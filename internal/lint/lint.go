// Package lint assembles the firehose-lint analyzer suite and runs it over
// loaded packages, honoring `//lint:ignore` suppression directives.
//
// The suite mechanically enforces the invariants that keep the concurrent
// engines race-safe and the paper's cost metrics trustworthy; see the
// analyzer package docs and DESIGN.md ("Static analysis") for the full
// contract of each check.
package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"firehose/internal/lint/analysis"
	"firehose/internal/lint/analyzers/aliascheck"
	"firehose/internal/lint/analyzers/codecsym"
	"firehose/internal/lint/analyzers/errdrop"
	"firehose/internal/lint/analyzers/guardcheck"
	"firehose/internal/lint/analyzers/lockorder"
	"firehose/internal/lint/analyzers/nowcheck"
	"firehose/internal/lint/analyzers/observecheck"
	"firehose/internal/lint/analyzers/snapshotcheck"
	"firehose/internal/lint/loader"
)

// Suite returns the full firehose-lint analyzer suite in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		guardcheck.Analyzer,
		observecheck.Analyzer,
		nowcheck.Analyzer,
		snapshotcheck.Analyzer,
		errdrop.Analyzer,
		aliascheck.Analyzer,
		lockorder.Analyzer,
		codecsym.Analyzer,
	}
}

// LockGraph runs only the lockorder analyzer over pkgs (discarding
// diagnostics) and returns the accumulated acquired-before graph in dot
// form. The graph is process-global in the lockorder package, so the
// accumulator is reset first: the dump reflects exactly the packages given.
func LockGraph(fset *token.FileSet, pkgs []*loader.Package) (string, error) {
	lockorder.ResetGraph()
	if _, err := Run(fset, pkgs, []*analysis.Analyzer{lockorder.Analyzer}); err != nil {
		return "", err
	}
	return lockorder.GraphDot(), nil
}

// Finding is one unsuppressed diagnostic, resolved to a file position.
type Finding struct {
	// Analyzer names the check that fired.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message states the violation.
	Message string
}

// String formats the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// ignoreRE matches a suppression directive: `//lint:ignore <name>[,<name>] <reason>`.
// The reason is mandatory — an unexplained suppression is itself reported.
var ignoreRE = regexp.MustCompile(`^lint:ignore\s+([\w,]+)(?:\s+(.*))?$`)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool
	hasReason bool
	pos       token.Position
}

// Run applies the analyzers to every package and returns the surviving
// findings sorted by position. A diagnostic is suppressed when a
// `//lint:ignore <analyzer> <reason>` directive sits on the same line or the
// line above it; a directive without a reason does not suppress and is
// reported itself, so every suppression in the tree carries its
// justification.
func Run(fset *token.FileSet, pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		ignores := collectIgnores(fset, pkg)
		for _, d := range ignores {
			if !d.hasReason {
				findings = append(findings, Finding{
					Analyzer: "lint",
					Pos:      d.pos,
					Message:  "//lint:ignore directive without a reason; write `//lint:ignore <analyzer> <why this is safe>`",
				})
			}
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report: func(diag analysis.Diagnostic) {
					pos := fset.Position(diag.Pos)
					if suppressed(ignores, a.Name, pos) {
						return
					}
					findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: diag.Message})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

func collectIgnores(fset *token.FileSet, pkg *loader.Package) []*ignoreDirective {
	var out []*ignoreDirective
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				m := ignoreRE.FindStringSubmatch(strings.TrimSpace(text))
				if m == nil {
					continue
				}
				names := make(map[string]bool)
				for _, n := range strings.Split(m[1], ",") {
					names[n] = true
				}
				out = append(out, &ignoreDirective{
					analyzers: names,
					hasReason: strings.TrimSpace(m[2]) != "",
					pos:       fset.Position(c.Pos()),
				})
			}
		}
	}
	return out
}

func suppressed(ignores []*ignoreDirective, analyzer string, pos token.Position) bool {
	for _, d := range ignores {
		if !d.hasReason || !d.analyzers[analyzer] || d.pos.Filename != pos.Filename {
			continue
		}
		if d.pos.Line == pos.Line || d.pos.Line == pos.Line-1 {
			return true
		}
	}
	return false
}
