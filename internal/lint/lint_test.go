package lint_test

import (
	"go/token"
	"os"
	"strings"
	"testing"

	"firehose/internal/lint"
	"firehose/internal/lint/loader"
)

// TestSuiteCleanOnRepo is the live no-false-positive guarantee: the full
// firehose-lint suite must be silent over the repository's own tree (the
// same invocation `make lint` gates on).
func TestSuiteCleanOnRepo(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := loader.Load(fset, "../..", "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	findings, err := lint.Run(fset, pkgs, lint.Suite())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding on the real tree: %s", f)
	}
}

// TestIgnoreDirective checks both halves of the suppression contract: a
// reasoned //lint:ignore silences the named analyzer — exercised once per
// dataflow analyzer (aliascheck, lockorder, codecsym) plus guardcheck in the
// testdata module — and a reason-less one suppresses nothing while being
// reported itself. Exactly the two unsuppressed findings must survive.
func TestIgnoreDirective(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := loader.Load(fset, "testdata", "./...")
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	findings, err := lint.Run(fset, pkgs, lint.Suite())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(findings), format(findings))
	}
	var sawBare, sawUnsuppressed bool
	for _, f := range findings {
		switch {
		case f.Analyzer == "lint" && strings.Contains(f.Message, "without a reason"):
			sawBare = true
		case f.Analyzer == "guardcheck" && strings.Contains(f.Message, "b.n is accessed without holding"):
			sawUnsuppressed = true
		}
	}
	if !sawBare {
		t.Errorf("missing the reason-less directive finding:\n%s", format(findings))
	}
	if !sawUnsuppressed {
		t.Errorf("the reason-less directive must not suppress the guardcheck finding:\n%s", format(findings))
	}
}

// TestRosterPinned keeps the committed analyzer roster in sync with the
// suite: CI diffs `firehose-lint -list` against docs/lint-roster.txt, and
// this test fails first (with a better message) when an analyzer is added or
// removed without updating the roster.
func TestRosterPinned(t *testing.T) {
	data, err := os.ReadFile("../../docs/lint-roster.txt")
	if err != nil {
		t.Fatalf("reading roster: %v", err)
	}
	var want []string
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line = strings.TrimSpace(line); line != "" && !strings.HasPrefix(line, "#") {
			want = append(want, line)
		}
	}
	var got []string
	for _, a := range lint.Suite() {
		got = append(got, a.Name)
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("suite roster drifted from docs/lint-roster.txt:\ngot:\n  %s\nwant:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// TestLockGraphGolden regenerates the whole-program lock acquired-before
// graph and compares it to the committed artifact, so every change to the
// locking structure shows up as a reviewable docs/lockgraph.dot diff
// (regenerate with `make lockgraph`).
func TestLockGraphGolden(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := loader.Load(fset, "../..", "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	dot, err := lint.LockGraph(fset, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("../../docs/lockgraph.dot")
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if dot != string(golden) {
		t.Errorf("lock graph drifted from docs/lockgraph.dot; regenerate with `make lockgraph`\ngot:\n%s\ngolden:\n%s", dot, golden)
	}
}

func format(fs []lint.Finding) string {
	lines := make([]string, len(fs))
	for i, f := range fs {
		lines[i] = "  " + f.String()
	}
	return strings.Join(lines, "\n")
}
