package lint_test

import (
	"go/token"
	"strings"
	"testing"

	"firehose/internal/lint"
	"firehose/internal/lint/loader"
)

// TestSuiteCleanOnRepo is the live no-false-positive guarantee: the full
// firehose-lint suite must be silent over the repository's own tree (the
// same invocation `make lint` gates on).
func TestSuiteCleanOnRepo(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := loader.Load(fset, "../..", "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	findings, err := lint.Run(fset, pkgs, lint.Suite())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding on the real tree: %s", f)
	}
}

// TestIgnoreDirective checks both halves of the suppression contract: a
// reasoned //lint:ignore silences the named analyzer, and a reason-less one
// suppresses nothing while being reported itself.
func TestIgnoreDirective(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := loader.Load(fset, "testdata", "./...")
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	findings, err := lint.Run(fset, pkgs, lint.Suite())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(findings), format(findings))
	}
	var sawBare, sawUnsuppressed bool
	for _, f := range findings {
		switch {
		case f.Analyzer == "lint" && strings.Contains(f.Message, "without a reason"):
			sawBare = true
		case f.Analyzer == "guardcheck" && strings.Contains(f.Message, "b.n is accessed without holding"):
			sawUnsuppressed = true
		}
	}
	if !sawBare {
		t.Errorf("missing the reason-less directive finding:\n%s", format(findings))
	}
	if !sawUnsuppressed {
		t.Errorf("the reason-less directive must not suppress the guardcheck finding:\n%s", format(findings))
	}
}

func format(fs []lint.Finding) string {
	lines := make([]string, len(fs))
	for i, f := range fs {
		lines[i] = "  " + f.String()
	}
	return strings.Join(lines, "\n")
}
