// Package loader loads and type-checks the packages of a Go module for
// analysis, using only the standard library and the go tool itself.
//
// It shells out to `go list -export -deps -json`, which compiles export data
// for every dependency into the build cache, then parses the target packages'
// sources with go/parser and type-checks them with go/types, resolving
// imports through the gc importer pointed at the listed export files. This is
// the same strategy as golang.org/x/tools/go/packages (LoadSyntax mode)
// without the dependency — it works offline because nothing is downloaded:
// the go toolchain builds export data locally.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// ImportPath is the package's import path.
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Files are the parsed source files (non-test only), with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo holds Uses, Defs, Selections and Types for the syntax.
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir (a module root or subdirectory), compiles export
// data, and returns the matched packages fully parsed and type-checked.
// Dependencies are resolved from export data only, so the cost is linear in
// the size of the matched packages, not their transitive closure. The
// returned packages share fset.
func Load(fset *token.FileSet, dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("loader: no packages matched %s in %s", strings.Join(patterns, " "), dir)
	}

	// One importer instance across all targets shares its package cache, so a
	// dependency's export data is decoded once per load, not once per target.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data listed for %q", path)
		}
		return os.Open(exp)
	})

	var out []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, t *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
