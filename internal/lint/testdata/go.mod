module ignoretest

go 1.22
