// The dataflow analyzers honor the same suppression contract as the
// syntactic ones: each case below seeds a real finding and silences it with
// a reasoned directive, so TestIgnoreDirective pins the per-analyzer ignore
// path for aliascheck, lockorder and codecsym.
package ignore

import (
	"ignoretest/internal/checkpoint"
	"ignoretest/internal/core"
)

type holder struct {
	last []int32
}

// retain stores Offer scratch, which aliascheck reports; the reasoned
// directive documents why this instance is safe.
func retain(m *core.MultiUser, h *holder, p *core.Post) {
	//lint:ignore aliascheck the holder is consumed synchronously before the next Offer
	h.last = m.Offer(p)
}

// handoff returns holding b.mu (the quiesce transfer-of-ownership shape);
// lockorder's held-at-return discipline is silenced with the documented
// reason.
func handoff(b *box) func() {
	b.mu.Lock()
	//lint:ignore lockorder ownership of b.mu transfers to the caller via the returned release func
	return b.mu.Unlock
}

type oneWay struct{ v uint64 }

// SnapshotState has no decode counterpart, which codecsym reports as a
// one-sided addition; the directive records that this state is export-only.
//
//lint:ignore codecsym export-only diagnostic state, never restored
func (o *oneWay) SnapshotState(enc *checkpoint.Encoder) error {
	enc.U64(o.v)
	return enc.Err()
}
