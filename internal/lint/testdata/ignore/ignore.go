// Package ignore exercises the //lint:ignore directive: a directive with a
// reason suppresses the named analyzer on its line and the next; a directive
// without a reason suppresses nothing and is itself reported.
package ignore

import "sync"

type box struct {
	// mu guards: n
	mu sync.Mutex
	n  int
}

// Peek documents why the unguarded read is safe; the finding is suppressed.
func (b *box) Peek() int {
	//lint:ignore guardcheck n is written once before the box is shared
	return b.n
}

// Steal has a directive with no reason: the guardcheck finding survives and
// the directive itself becomes a finding.
func (b *box) Steal() int {
	//lint:ignore guardcheck
	return b.n
}
