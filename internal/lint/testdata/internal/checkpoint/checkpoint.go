// Package checkpoint gives the ignore-directive module a codec surface for
// codecsym (recognized by the internal/checkpoint import-path suffix).
package checkpoint

import "io"

type Encoder struct{ w io.Writer }

func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

func (e *Encoder) U64(v uint64) {}
func (e *Encoder) Err() error   { return nil }

type Decoder struct{ r io.Reader }

func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

func (d *Decoder) U64() uint64 { return 0 }
func (d *Decoder) Err() error  { return nil }
