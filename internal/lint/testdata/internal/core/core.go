// Package core gives the ignore-directive module an aliascheck source: any
// Offer declared under an internal/core suffix returning a slice is
// scratch.
package core

type Post struct{ ID int }

type MultiUser struct {
	users []int32
}

// Offer returns per-instance scratch, valid until the next Offer.
func (m *MultiUser) Offer(p *Post) []int32 {
	m.users = m.users[:0]
	m.users = append(m.users, int32(p.ID))
	return m.users
}
