package metrics

import (
	"fmt"
	"strings"
	"time"
)

// NumBuckets is the number of finite latency buckets in a Histogram.
// Observations above the last bound are counted only in Count (the implicit
// +Inf bucket of the Prometheus exposition).
const NumBuckets = 20

// BucketBoundsNanos are the inclusive upper bounds of the latency buckets, in
// nanoseconds. They span 100ns..1s in a 1/2.5/5 decade pattern — wide enough
// to cover a sub-microsecond UniBin decision and a multi-millisecond queue
// stall in the same histogram. All Histograms share these bounds, which is
// what makes two Histograms mergeable by plain bucket-wise addition.
var BucketBoundsNanos = [NumBuckets]int64{
	100, 250, 500,
	1_000, 2_500, 5_000,
	10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
	10_000_000, 25_000_000, 50_000_000,
	100_000_000, 1_000_000_000,
}

// Histogram is a fixed-bucket latency histogram. Like Counters it is a plain
// value with no internal locking: the streaming decision path is
// single-goroutine by design, so each algorithm instance (or engine worker)
// owns one Histogram and mutates it without synchronization; concurrent
// engines snapshot a value copy under the owner's lock and Merge the copies.
// The fixed bucket layout keeps the value copy a flat ~200 bytes and the
// merge a loop of integer additions — the same discipline as Counters.Merge.
type Histogram struct {
	// Count is the total number of observations, including those above the
	// last bucket bound.
	Count uint64
	// SumNanos is the sum of all observed durations in nanoseconds.
	SumNanos int64
	// Buckets[i] counts observations d with bound[i-1] < d <= bound[i]
	// (non-cumulative). The Prometheus exposition cumulates at write time.
	Buckets [NumBuckets]uint64
}

// Observe records one duration. Negative durations (possible under clock
// adjustments when the caller did not use a monotonic source) clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	n := d.Nanoseconds()
	if n < 0 {
		n = 0
	}
	h.Count++
	h.SumNanos += n
	for i, bound := range BucketBoundsNanos {
		if n <= bound {
			h.Buckets[i]++
			return
		}
	}
	// Above the last bound: counted in Count only.
}

// ObserveSince records the elapsed time since start. It is designed for the
// one-line instrumentation pattern
//
//	defer c.Decisions.ObserveSince(time.Now())
//
// where time.Now() is evaluated at the defer statement, not at return.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start))
}

// Merge adds other's observations into h. Because all Histograms share one
// bucket layout, the merge of per-worker histograms equals the histogram of
// the concatenated observation streams (property-tested).
func (h *Histogram) Merge(other Histogram) {
	h.Count += other.Count
	h.SumNanos += other.SumNanos
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// MergeHistograms sums a set of histogram snapshots, mirroring Sum for
// Counters.
func MergeHistograms(snaps ...Histogram) Histogram {
	var total Histogram
	for _, s := range snaps {
		total.Merge(s)
	}
	return total
}

// Mean returns the average observed duration, or 0 for an empty histogram.
func (h *Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.SumNanos / int64(h.Count))
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket containing the target rank. Observations above the last
// bound are attributed to the last bound, so tail quantiles falling in the
// overflow region report 1s — a floor, not an exact value. An empty
// histogram reports 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum uint64
	lower := int64(0)
	for i, bound := range BucketBoundsNanos {
		inBucket := h.Buckets[i]
		if inBucket > 0 && float64(cum+inBucket) >= rank {
			frac := (rank - float64(cum)) / float64(inBucket)
			if frac < 0 {
				frac = 0
			}
			return time.Duration(lower) + time.Duration(frac*float64(bound-lower))
		}
		cum += inBucket
		lower = bound
	}
	// Rank lies in the overflow region.
	return time.Duration(BucketBoundsNanos[NumBuckets-1])
}

// String summarizes the histogram for experiment output.
func (h *Histogram) String() string {
	if h.Count == 0 {
		return "count=0"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "count=%d mean=%v p50=%v p95=%v p99=%v",
		h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	return sb.String()
}
