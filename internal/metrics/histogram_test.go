package metrics

import (
	"math/rand"
	"testing"
	"time"
)

func TestHistogramObserveBucketPlacement(t *testing.T) {
	var h Histogram
	cases := []struct {
		d      time.Duration
		bucket int // -1 means overflow (Count only)
	}{
		{0, 0},
		{100 * time.Nanosecond, 0},  // on the bound: inclusive
		{101 * time.Nanosecond, 1},  // just above
		{time.Microsecond, 3},       // 1µs bound
		{time.Millisecond, 12},      // 1ms bound
		{time.Second, NumBuckets - 1},
		{2 * time.Second, -1},
		{-time.Second, 0}, // negative clamps to 0
	}
	for _, c := range cases {
		h.Observe(c.d)
	}
	if h.Count != uint64(len(cases)) {
		t.Fatalf("Count = %d, want %d", h.Count, len(cases))
	}
	want := [NumBuckets]uint64{}
	for _, c := range cases {
		if c.bucket >= 0 {
			want[c.bucket]++
		}
	}
	if h.Buckets != want {
		t.Fatalf("Buckets = %v, want %v", h.Buckets, want)
	}
	// Negative observation contributed 0 to the sum.
	wantSum := int64(0 + 100 + 101 + 1_000 + 1_000_000 + 1_000_000_000 + 2_000_000_000 + 0)
	if h.SumNanos != wantSum {
		t.Fatalf("SumNanos = %d, want %d", h.SumNanos, wantSum)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram: mean=%v p50=%v", h.Mean(), h.Quantile(0.5))
	}
	if s := h.String(); s != "count=0" {
		t.Fatalf("empty String = %q", s)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 100 observations of exactly 1µs: every quantile must land in the
	// (500ns, 1µs] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got <= 500*time.Nanosecond || got > time.Microsecond {
			t.Fatalf("q=%v: %v outside (500ns, 1µs]", q, got)
		}
	}
	// Quantiles are monotone in q.
	h = Histogram{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(rng.Int63n(int64(50 * time.Millisecond))))
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantile not monotone: q=%v gives %v after %v", q, cur, prev)
		}
		prev = cur
	}
	// Out-of-range q clamps instead of misbehaving.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("out-of-range quantiles do not clamp")
	}
}

func TestHistogramOverflowQuantileFloor(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Second) // beyond the last bound
	}
	if got := h.Quantile(0.5); got != time.Duration(BucketBoundsNanos[NumBuckets-1]) {
		t.Fatalf("overflow p50 = %v, want last bound", got)
	}
}

func TestObserveSince(t *testing.T) {
	var h Histogram
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if h.Count != 1 {
		t.Fatalf("Count = %d", h.Count)
	}
	if h.SumNanos < int64(time.Millisecond) {
		t.Fatalf("SumNanos = %d, want >= 1ms", h.SumNanos)
	}
}

// TestHistogramMergeEqualsConcatenation is the merge property test the
// parallel engine's snapshot discipline relies on: observing a stream of
// durations into shards and merging the shards must produce exactly the
// histogram of observing the concatenated stream into one instance.
func TestHistogramMergeEqualsConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		numShards := 1 + rng.Intn(8)
		shards := make([]Histogram, numShards)
		var whole Histogram
		n := rng.Intn(2000)
		for i := 0; i < n; i++ {
			// Log-uniform-ish spread so every bucket (and the overflow
			// region) gets traffic.
			d := time.Duration(rng.Int63n(int64(10) << uint(rng.Intn(30))))
			whole.Observe(d)
			shards[rng.Intn(numShards)].Observe(d)
		}
		merged := MergeHistograms(shards...)
		if merged != whole {
			t.Fatalf("trial %d: merge of %d shards != histogram of concatenation\nmerged: %+v\nwhole:  %+v",
				trial, numShards, merged, whole)
		}
	}
}

// Counters.Merge must carry the embedded histogram along.
func TestCountersMergeCarriesDecisions(t *testing.T) {
	var a, b Counters
	a.Decisions.Observe(time.Microsecond)
	b.Decisions.Observe(time.Millisecond)
	a.Merge(b)
	if a.Decisions.Count != 2 {
		t.Fatalf("merged Decisions.Count = %d, want 2", a.Decisions.Count)
	}
	total := Sum(a, b)
	if total.Decisions.Count != 3 {
		t.Fatalf("Sum Decisions.Count = %d, want 3", total.Decisions.Count)
	}
}
