// Package metrics provides the instrumentation counters the paper reports in
// its evaluation (Section 6): pairwise post comparisons, post-copy insertions
// into bins, and memory consumption measured as stored post copies. Counters
// are plain integers — the streaming algorithms are single-goroutine by
// design (a real-time decision per arrival); concurrent engines own one
// Counters per worker and merge.
package metrics

import (
	"fmt"
	"math"
)

// Counters accumulates the cost metrics of a diversification run.
type Counters struct {
	// Comparisons counts pairwise post coverage checks (one per candidate
	// post examined on an arrival).
	Comparisons uint64
	// Insertions counts post-copy insertions into bins. A post stored in k
	// bins contributes k insertions, matching the paper's accounting.
	Insertions uint64
	// Evictions counts post copies removed from bins by the λt window.
	Evictions uint64
	// Accepted counts posts emitted into the diversified sub-stream Z.
	Accepted uint64
	// Rejected counts posts pruned as redundant.
	Rejected uint64

	storedLive int64
	// StoredPeak is the maximum number of post copies simultaneously
	// resident across all bins — the paper's RAM metric up to a constant
	// per-copy factor.
	StoredPeak int64

	// Decisions is the latency distribution of the per-post decision (one
	// Offer on one algorithm instance). It follows the same ownership
	// discipline as the scalar counters: mutated without synchronization by
	// the single goroutine driving the instance, snapshotted under the
	// owner's lock, merged across instances and workers by Merge/Sum.
	Decisions Histogram
}

// AddStored records n new live post copies and updates the peak.
func (c *Counters) AddStored(n int) {
	c.storedLive += int64(n)
	if c.storedLive > c.StoredPeak {
		c.StoredPeak = c.storedLive
	}
}

// RemoveStored records n evicted post copies.
func (c *Counters) RemoveStored(n int) {
	c.storedLive -= int64(n)
	if c.storedLive < 0 {
		panic(fmt.Sprintf("metrics: live stored copies went negative (%d)", c.storedLive))
	}
}

// StoredLive returns the current number of live post copies.
func (c *Counters) StoredLive() int64 { return c.storedLive }

// SetStored overwrites the live and peak stored-copy counts wholesale — the
// checkpoint-restore hook, where both values come from a validated snapshot
// rather than from incremental Add/RemoveStored bookkeeping. live must be
// non-negative and no greater than peak; restore code validates before
// calling, so a violation here is a programming error and panics like
// RemoveStored does.
func (c *Counters) SetStored(live, peak int64) {
	if live < 0 || peak < live {
		panic(fmt.Sprintf("metrics: SetStored(%d, %d): live must be in [0, peak]", live, peak))
	}
	c.storedLive = live
	c.StoredPeak = peak
}

// Processed returns the total number of posts offered.
func (c *Counters) Processed() uint64 { return c.Accepted + c.Rejected }

// PruneRatio returns the fraction of posts pruned as redundant. A run that
// processed no posts has ratio 0 (not NaN), so reporting code can divide
// blindly.
func (c *Counters) PruneRatio() float64 {
	p := c.Processed()
	if p == 0 {
		return 0
	}
	return float64(c.Rejected) / float64(p)
}

// EstimateRAMBytes converts the peak stored-copy count into bytes given an
// average per-copy footprint (fingerprint + timestamp + author + text
// reference and bin bookkeeping). A non-positive bytesPerCopy estimates 0
// rather than a negative footprint, and a product that would overflow int64
// saturates at math.MaxInt64 — peaks summed across many merged workers times
// a large per-copy factor must not wrap into a negative RAM figure.
func (c *Counters) EstimateRAMBytes(bytesPerCopy int) int64 {
	if bytesPerCopy <= 0 || c.StoredPeak <= 0 {
		return 0
	}
	if c.StoredPeak > math.MaxInt64/int64(bytesPerCopy) {
		return math.MaxInt64
	}
	return c.StoredPeak * int64(bytesPerCopy)
}

// Merge adds other's counts into c. Peaks are summed, which upper-bounds the
// true combined peak; callers merging workers that ran concurrently get a
// conservative RAM estimate, and callers merging sequential phases get an
// over-estimate they can ignore in favor of per-phase peaks.
func (c *Counters) Merge(other Counters) {
	c.Comparisons += other.Comparisons
	c.Insertions += other.Insertions
	c.Evictions += other.Evictions
	c.Accepted += other.Accepted
	c.Rejected += other.Rejected
	c.storedLive += other.storedLive
	c.StoredPeak += other.StoredPeak
	c.Decisions.Merge(other.Decisions)
}

// Sum merges a set of counter snapshots into one total. It is the merge step
// of concurrent engines: each worker's Counters value is snapshotted under
// that worker's lock, and the (unsynchronized) value copies are summed here
// without touching live counters.
func Sum(snaps ...Counters) Counters {
	var total Counters
	for _, s := range snaps {
		total.Merge(s)
	}
	return total
}

// String formats the counters for experiment output.
func (c *Counters) String() string {
	return fmt.Sprintf("comparisons=%d insertions=%d evictions=%d accepted=%d rejected=%d peakCopies=%d",
		c.Comparisons, c.Insertions, c.Evictions, c.Accepted, c.Rejected, c.StoredPeak)
}
