package metrics

import (
	"strings"
	"testing"
)

func TestStoredPeakTracking(t *testing.T) {
	var c Counters
	c.AddStored(3)
	c.AddStored(2)
	if c.StoredLive() != 5 || c.StoredPeak != 5 {
		t.Fatalf("live=%d peak=%d", c.StoredLive(), c.StoredPeak)
	}
	c.RemoveStored(4)
	if c.StoredLive() != 1 || c.StoredPeak != 5 {
		t.Fatalf("after removal live=%d peak=%d", c.StoredLive(), c.StoredPeak)
	}
	c.AddStored(2)
	if c.StoredPeak != 5 {
		t.Fatalf("peak should stay 5, got %d", c.StoredPeak)
	}
	c.AddStored(10)
	if c.StoredPeak != 13 {
		t.Fatalf("peak should rise to 13, got %d", c.StoredPeak)
	}
}

func TestRemoveStoredPanicsOnNegative(t *testing.T) {
	var c Counters
	c.AddStored(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when live copies go negative")
		}
	}()
	c.RemoveStored(2)
}

func TestProcessedAndPruneRatio(t *testing.T) {
	var c Counters
	if c.PruneRatio() != 0 {
		t.Fatal("empty counters should have prune ratio 0")
	}
	c.Accepted = 90
	c.Rejected = 10
	if c.Processed() != 100 {
		t.Fatalf("Processed = %d", c.Processed())
	}
	if got := c.PruneRatio(); got != 0.1 {
		t.Fatalf("PruneRatio = %v", got)
	}
}

func TestEstimateRAMBytes(t *testing.T) {
	var c Counters
	c.AddStored(100)
	if got := c.EstimateRAMBytes(64); got != 6400 {
		t.Fatalf("EstimateRAMBytes = %d", got)
	}
}

func TestMerge(t *testing.T) {
	a := Counters{Comparisons: 1, Insertions: 2, Evictions: 3, Accepted: 4, Rejected: 5}
	a.AddStored(7)
	b := Counters{Comparisons: 10, Insertions: 20, Evictions: 30, Accepted: 40, Rejected: 50}
	b.AddStored(3)
	a.Merge(b)
	if a.Comparisons != 11 || a.Insertions != 22 || a.Evictions != 33 ||
		a.Accepted != 44 || a.Rejected != 55 {
		t.Fatalf("merged counters wrong: %+v", a)
	}
	if a.StoredLive() != 10 || a.StoredPeak != 10 {
		t.Fatalf("merged stored wrong: live=%d peak=%d", a.StoredLive(), a.StoredPeak)
	}
}

func TestString(t *testing.T) {
	c := Counters{Comparisons: 5, Accepted: 1}
	s := c.String()
	for _, want := range []string{"comparisons=5", "accepted=1", "peakCopies=0"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestSum(t *testing.T) {
	a := Counters{Comparisons: 1, Accepted: 2, Rejected: 1}
	a.AddStored(4)
	b := Counters{Comparisons: 9, Accepted: 3, Rejected: 6}
	b.AddStored(2)
	total := Sum(a, b)
	if total.Comparisons != 10 || total.Accepted != 5 || total.Rejected != 7 {
		t.Fatalf("Sum wrong: %+v", total)
	}
	if total.StoredLive() != 6 {
		t.Fatalf("Sum stored live = %d", total.StoredLive())
	}
	// Inputs are value snapshots; summing must not mutate them.
	if a.Comparisons != 1 || b.Comparisons != 9 {
		t.Fatal("Sum mutated its inputs")
	}
	if empty := Sum(); empty.Processed() != 0 {
		t.Fatalf("Sum() = %+v", empty)
	}
}
