package metrics

import (
	"testing"
	"testing/quick"
)

// TestMergeAccumulates: merging k single-run counters equals one counter
// that saw all the events (for the additive fields).
func TestMergeAccumulates(t *testing.T) {
	prop := func(events [][5]uint8) bool {
		var merged Counters
		var direct Counters
		for _, e := range events {
			var c Counters
			c.Comparisons = uint64(e[0])
			c.Insertions = uint64(e[1])
			c.Evictions = uint64(e[2])
			c.Accepted = uint64(e[3])
			c.Rejected = uint64(e[4])
			merged.Merge(c)

			direct.Comparisons += uint64(e[0])
			direct.Insertions += uint64(e[1])
			direct.Evictions += uint64(e[2])
			direct.Accepted += uint64(e[3])
			direct.Rejected += uint64(e[4])
		}
		return merged.Comparisons == direct.Comparisons &&
			merged.Insertions == direct.Insertions &&
			merged.Evictions == direct.Evictions &&
			merged.Accepted == direct.Accepted &&
			merged.Rejected == direct.Rejected &&
			merged.Processed() == direct.Processed()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestStoredNeverExceedsPeak: under any add/remove sequence that stays
// non-negative, live <= peak always holds.
func TestStoredNeverExceedsPeak(t *testing.T) {
	prop := func(deltas []int8) bool {
		var c Counters
		for _, d := range deltas {
			n := int(d)
			if n >= 0 {
				c.AddStored(n)
			} else {
				if c.StoredLive()+int64(n) < 0 {
					continue // would panic by design; skip
				}
				c.RemoveStored(-n)
			}
			if c.StoredLive() > c.StoredPeak {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
