package metrics

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file implements a minimal process-wide metrics registry with
// Prometheus text exposition (format version 0.0.4), hand-rolled so the
// module stays dependency-free. The registry holds metric *families*; each
// family is collected on demand by a callback, so the hot paths keep their
// existing unsynchronized Counters/Histogram discipline and pay nothing until
// a scrape happens. Collect callbacks must take whatever lock protects the
// values they snapshot (e.g. an engine's worker locks).

// Kind is the exposition type of a metric family.
type Kind int

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a latency Histogram snapshot.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Label is one name="value" pair. Labels are ordered; collectors should emit
// them in a fixed order so scrapes are deterministic.
type Label struct {
	Name, Value string
}

// Sample is one collected time series of a family: a label set plus either a
// scalar Value (counter/gauge) or a Histogram snapshot.
type Sample struct {
	Labels []Label
	Value  float64
	Hist   Histogram // used when the family is KindHistogram
}

// Collector produces the current samples of one family. It is called under
// the registry's read lock, possibly concurrently with other collectors.
type Collector func() []Sample

type family struct {
	name    string
	help    string
	kind    Kind
	collect Collector
}

// Registry is a set of metric families with a text exposition. Register and
// WritePrometheus are safe for concurrent use; collection itself delegates
// thread safety to the collectors.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Register adds a family. The name must be a valid Prometheus metric name
// and unused; histogram family names must not carry the _bucket/_sum/_count
// suffixes the exposition appends.
func (r *Registry) Register(name, help string, kind Kind, collect Collector) error {
	if !metricNameRE.MatchString(name) {
		return fmt.Errorf("metrics: invalid metric name %q", name)
	}
	if collect == nil {
		return fmt.Errorf("metrics: nil collector for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return fmt.Errorf("metrics: metric %q already registered", name)
	}
	f := &family{name: name, help: help, kind: kind, collect: collect}
	r.byName[name] = f
	r.families = append(r.families, f)
	return nil
}

// MustRegister is Register that panics on error — for wiring code where a
// registration failure is a programming bug.
func (r *Registry) MustRegister(name, help string, kind Kind, collect Collector) {
	if err := r.Register(name, help, kind, collect); err != nil {
		panic(err)
	}
}

// WritePrometheus writes every family in text exposition format, sorted by
// family name for deterministic scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var sb strings.Builder
	for _, f := range fams {
		samples := f.collect()
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range samples {
			if f.kind == KindHistogram {
				writeHistogramSample(&sb, f.name, s)
			} else {
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, formatLabels(s.Labels), formatValue(s.Value))
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// writeHistogramSample expands one Histogram into the cumulative _bucket
// series plus _sum and _count, with bucket bounds converted to seconds as
// Prometheus convention requires.
func writeHistogramSample(sb *strings.Builder, name string, s Sample) {
	var cum uint64
	for i, bound := range BucketBoundsNanos {
		cum += s.Hist.Buckets[i]
		le := strconv.FormatFloat(float64(bound)/1e9, 'g', -1, 64)
		fmt.Fprintf(sb, "%s_bucket%s %d\n", name, formatLabels(append(s.Labels[:len(s.Labels):len(s.Labels)], Label{"le", le})), cum)
	}
	fmt.Fprintf(sb, "%s_bucket%s %d\n", name, formatLabels(append(s.Labels[:len(s.Labels):len(s.Labels)], Label{"le", "+Inf"})), s.Hist.Count)
	fmt.Fprintf(sb, "%s_sum%s %s\n", name, formatLabels(s.Labels), formatValue(float64(s.Hist.SumNanos)/1e9))
	fmt.Fprintf(sb, "%s_count%s %d\n", name, formatLabels(s.Labels), s.Hist.Count)
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabelValue(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(h string) string { return helpEscaper.Replace(h) }
