package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.MustRegister("test_requests_total", "Total requests.", KindCounter, func() []Sample {
		return []Sample{
			{Labels: []Label{{"code", "200"}}, Value: 7},
			{Labels: []Label{{"code", "500"}}, Value: 1},
		}
	})
	r.MustRegister("test_queue_depth", "Queue depth.", KindGauge, func() []Sample {
		return []Sample{{Value: 3}}
	})
	var h Histogram
	h.Observe(200 * time.Nanosecond) // bucket le=2.5e-07
	h.Observe(2 * time.Second)       // overflow: +Inf only
	r.MustRegister("test_latency_seconds", "Latency.", KindHistogram, func() []Sample {
		return []Sample{{Labels: []Label{{"algorithm", "UniBin"}}, Hist: h}}
	})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP test_requests_total Total requests.\n",
		"# TYPE test_requests_total counter\n",
		`test_requests_total{code="200"} 7` + "\n",
		`test_requests_total{code="500"} 1` + "\n",
		"# TYPE test_queue_depth gauge\ntest_queue_depth 3\n",
		"# TYPE test_latency_seconds histogram\n",
		`test_latency_seconds_bucket{algorithm="UniBin",le="1e-07"} 0` + "\n",
		`test_latency_seconds_bucket{algorithm="UniBin",le="2.5e-07"} 1` + "\n",
		`test_latency_seconds_bucket{algorithm="UniBin",le="1"} 1` + "\n",
		`test_latency_seconds_bucket{algorithm="UniBin",le="+Inf"} 2` + "\n",
		`test_latency_seconds_sum{algorithm="UniBin"} 2.0000002` + "\n",
		`test_latency_seconds_count{algorithm="UniBin"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\ngot:\n%s", want, out)
		}
	}
	// Families are sorted by name.
	if strings.Index(out, "test_latency_seconds") > strings.Index(out, "test_queue_depth") {
		t.Error("families not sorted by name")
	}
	// Every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	r := NewRegistry()
	collect := func() []Sample { return nil }
	if err := r.Register("ok_name", "", KindGauge, collect); err != nil {
		t.Fatalf("valid name rejected: %v", err)
	}
	if err := r.Register("ok_name", "", KindGauge, collect); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register("0bad", "", KindGauge, collect); err == nil {
		t.Fatal("invalid name accepted")
	}
	if err := r.Register("no_collector", "", KindGauge, nil); err == nil {
		t.Fatal("nil collector accepted")
	}
}

func TestRegistryEscaping(t *testing.T) {
	r := NewRegistry()
	r.MustRegister("esc_metric", "line1\nline2 \\slash", KindGauge, func() []Sample {
		return []Sample{{Labels: []Label{{"path", `a"b\c` + "\nd"}}, Value: 1}}
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# HELP esc_metric line1\nline2 \\slash`) {
		t.Errorf("help not escaped: %s", out)
	}
	if !strings.Contains(out, `esc_metric{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped: %s", out)
	}
}

func TestCountersEdgeCases(t *testing.T) {
	var c Counters
	// Zero processed posts: PruneRatio is 0, not NaN.
	if got := c.PruneRatio(); got != 0 {
		t.Fatalf("PruneRatio of empty counters = %v", got)
	}
	// Non-positive bytesPerCopy estimates 0, not a negative footprint.
	c.AddStored(10)
	for _, bpc := range []int{0, -24} {
		if got := c.EstimateRAMBytes(bpc); got != 0 {
			t.Fatalf("EstimateRAMBytes(%d) = %d, want 0", bpc, got)
		}
	}
	if got := c.EstimateRAMBytes(24); got != 240 {
		t.Fatalf("EstimateRAMBytes(24) = %d, want 240", got)
	}
	// Overflow saturates instead of wrapping negative.
	big := Counters{StoredPeak: 1 << 62}
	if got := big.EstimateRAMBytes(1 << 10); got != int64(^uint64(0)>>1) {
		t.Fatalf("overflowing estimate = %d, want MaxInt64", got)
	}
	// A negative peak (possible only through adversarial merges) clamps to 0.
	neg := Counters{StoredPeak: -5}
	if got := neg.EstimateRAMBytes(24); got != 0 {
		t.Fatalf("negative-peak estimate = %d, want 0", got)
	}
}
