// Package postbin implements the time-windowed post bin of Section 4: a
// circular array holding the diversified posts of the last λt time units,
// with two tracked positions — the oldest in-window entry and the most
// recent one. All three SPSD algorithms are built on this structure: UniBin
// keeps one bin for the whole stream, NeighborBin one per author, CliqueBin
// one per clique.
//
// Entries must be pushed in non-decreasing time order (posts arrive as a
// stream). Scanning visits entries newest-first, matching the paper's
// comparison order; pruning drops entries older than a cutoff from the old
// end.
package postbin

import "fmt"

// MinShrinkCap is the capacity floor of the bins' shrink-on-prune policy:
// PruneBefore halves a buffer whose occupancy has fallen below a quarter of
// its capacity, but never below this floor, so steady small bins don't
// thrash between sizes. It doubles as SoA's initial allocation.
const MinShrinkCap = 64

// Bin is a growable circular array of timestamped values.
type Bin[T any] struct {
	buf   []entry[T]
	head  int // index of oldest entry
	count int
	last  int64 // time of most recent entry, valid when count > 0
}

type entry[T any] struct {
	time int64
	val  T
}

// New returns an empty bin with a small initial capacity.
func New[T any]() *Bin[T] {
	return &Bin[T]{}
}

// Len returns the number of entries currently stored.
func (b *Bin[T]) Len() int { return b.count }

// Cap returns the current capacity of the underlying circular array.
func (b *Bin[T]) Cap() int { return len(b.buf) }

// Push appends a value with the given timestamp. Timestamps must be
// non-decreasing; Push panics otherwise, because out-of-order insertion
// would silently break the windowed scan semantics.
func (b *Bin[T]) Push(t int64, v T) {
	if b.count > 0 && t < b.last {
		panic(fmt.Sprintf("postbin: out-of-order push: %d after %d", t, b.last))
	}
	if b.count == len(b.buf) {
		b.grow()
	}
	idx := b.head + b.count
	if idx >= len(b.buf) {
		idx -= len(b.buf)
	}
	b.buf[idx] = entry[T]{time: t, val: v}
	b.count++
	b.last = t
}

func (b *Bin[T]) grow() {
	newCap := len(b.buf) * 2
	if newCap < 8 {
		newCap = 8
	}
	b.resize(newCap)
}

// resize moves the live entries into a fresh buffer of capacity newCap
// (>= count) and rebases head to 0.
func (b *Bin[T]) resize(newCap int) {
	nb := make([]entry[T], newCap)
	for i := 0; i < b.count; i++ {
		nb[i] = b.buf[(b.head+i)%len(b.buf)]
	}
	b.buf = nb
	b.head = 0
}

// PruneBefore removes all entries with time < cutoff from the old end and
// returns the number removed. When occupancy drops below a quarter of the
// capacity it halves the buffer (floor MinShrinkCap), so a traffic burst's
// peak allocation is released once the window passes instead of being pinned
// for the rest of the stream.
func (b *Bin[T]) PruneBefore(cutoff int64) int {
	removed := 0
	var zero entry[T]
	for b.count > 0 {
		e := &b.buf[b.head]
		if e.time >= cutoff {
			break
		}
		*e = zero // release references for GC
		b.head++
		if b.head == len(b.buf) {
			b.head = 0
		}
		b.count--
		removed++
	}
	if b.count == 0 {
		b.head = 0
	}
	if c := len(b.buf); c > MinShrinkCap && b.count < c/4 {
		b.resize(max(MinShrinkCap, c/2))
	}
	return removed
}

// ScanNewestFirst calls f for each entry from the most recent to the oldest,
// stopping early if f returns false. This is the comparison order of the
// paper's algorithms: recent posts are the most likely to cover a new
// arrival, and the scan can stop as soon as the λt window is exhausted.
func (b *Bin[T]) ScanNewestFirst(f func(t int64, v T) bool) {
	for i := b.count - 1; i >= 0; i-- {
		e := &b.buf[(b.head+i)%len(b.buf)]
		if !f(e.time, e.val) {
			return
		}
	}
}

// OldestTime returns the timestamp of the oldest entry, or ok=false when the
// bin is empty.
func (b *Bin[T]) OldestTime() (t int64, ok bool) {
	if b.count == 0 {
		return 0, false
	}
	return b.buf[b.head].time, true
}

// NewestTime returns the timestamp of the most recent entry, or ok=false
// when the bin is empty.
func (b *Bin[T]) NewestTime() (t int64, ok bool) {
	if b.count == 0 {
		return 0, false
	}
	return b.last, true
}

// Snapshot returns the entries oldest-first. It allocates; intended for
// tests and diagnostics, not the hot path.
func (b *Bin[T]) Snapshot() []T {
	out := make([]T, 0, b.count)
	for i := 0; i < b.count; i++ {
		out = append(out, b.buf[(b.head+i)%len(b.buf)].val)
	}
	return out
}
