package postbin

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestEmptyBin(t *testing.T) {
	b := New[int]()
	if b.Len() != 0 {
		t.Fatalf("Len = %d", b.Len())
	}
	if _, ok := b.OldestTime(); ok {
		t.Fatal("OldestTime on empty should report !ok")
	}
	if _, ok := b.NewestTime(); ok {
		t.Fatal("NewestTime on empty should report !ok")
	}
	if got := b.PruneBefore(100); got != 0 {
		t.Fatalf("PruneBefore on empty = %d", got)
	}
	called := false
	b.ScanNewestFirst(func(int64, int) bool { called = true; return true })
	if called {
		t.Fatal("scan on empty bin must not call f")
	}
}

func TestPushScanOrder(t *testing.T) {
	b := New[string]()
	b.Push(1, "a")
	b.Push(2, "b")
	b.Push(2, "c") // ties allowed
	b.Push(5, "d")
	var got []string
	b.ScanNewestFirst(func(_ int64, v string) bool {
		got = append(got, v)
		return true
	})
	want := []string{"d", "c", "b", "a"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scan order = %v, want %v", got, want)
	}
}

func TestScanEarlyStop(t *testing.T) {
	b := New[int]()
	for i := 0; i < 10; i++ {
		b.Push(int64(i), i)
	}
	var got []int
	b.ScanNewestFirst(func(_ int64, v int) bool {
		got = append(got, v)
		return len(got) < 3
	})
	if !reflect.DeepEqual(got, []int{9, 8, 7}) {
		t.Fatalf("early-stop scan = %v", got)
	}
}

func TestOutOfOrderPushPanics(t *testing.T) {
	b := New[int]()
	b.Push(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order push")
		}
	}()
	b.Push(9, 2)
}

func TestPruneBefore(t *testing.T) {
	b := New[int]()
	for i := 0; i < 10; i++ {
		b.Push(int64(i*10), i)
	}
	if got := b.PruneBefore(35); got != 4 { // times 0,10,20,30
		t.Fatalf("pruned %d, want 4", got)
	}
	if b.Len() != 6 {
		t.Fatalf("Len = %d, want 6", b.Len())
	}
	old, _ := b.OldestTime()
	if old != 40 {
		t.Fatalf("OldestTime = %d, want 40", old)
	}
	if got := b.PruneBefore(35); got != 0 {
		t.Fatalf("second prune removed %d", got)
	}
	if got := b.PruneBefore(1000); got != 6 {
		t.Fatalf("full prune removed %d", got)
	}
	if b.Len() != 0 {
		t.Fatalf("Len after full prune = %d", b.Len())
	}
}

func TestWraparound(t *testing.T) {
	b := New[int]()
	// Interleave pushes and prunes to force head to wrap.
	time := int64(0)
	for round := 0; round < 100; round++ {
		for i := 0; i < 5; i++ {
			time++
			b.Push(time, int(time))
		}
		b.PruneBefore(time - 2)
	}
	snap := b.Snapshot()
	if len(snap) != b.Len() {
		t.Fatalf("snapshot len %d vs Len %d", len(snap), b.Len())
	}
	for i := 1; i < len(snap); i++ {
		if snap[i] < snap[i-1] {
			t.Fatalf("snapshot out of order: %v", snap)
		}
	}
}

func TestGrowth(t *testing.T) {
	b := New[int]()
	for i := 0; i < 1000; i++ {
		b.Push(int64(i), i)
	}
	if b.Len() != 1000 {
		t.Fatalf("Len = %d", b.Len())
	}
	newest, _ := b.NewestTime()
	oldest, _ := b.OldestTime()
	if newest != 999 || oldest != 0 {
		t.Fatalf("times = %d..%d", oldest, newest)
	}
}

// TestAgainstReferenceModel drives the bin with random operations and checks
// every observable against a simple slice-based reference implementation.
func TestAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	type refEntry struct {
		time int64
		val  int
	}
	b := New[int]()
	var ref []refEntry
	time := int64(0)
	for op := 0; op < 5000; op++ {
		switch rng.Intn(3) {
		case 0, 1: // push
			time += int64(rng.Intn(3))
			v := rng.Int()
			b.Push(time, v)
			ref = append(ref, refEntry{time, v})
		case 2: // prune
			cutoff := time - int64(rng.Intn(10))
			got := b.PruneBefore(cutoff)
			want := 0
			for len(ref) > 0 && ref[0].time < cutoff {
				ref = ref[1:]
				want++
			}
			if got != want {
				t.Fatalf("op %d: pruned %d, want %d", op, got, want)
			}
		}
		if b.Len() != len(ref) {
			t.Fatalf("op %d: Len %d vs ref %d", op, b.Len(), len(ref))
		}
		var scanned []int
		b.ScanNewestFirst(func(_ int64, v int) bool {
			scanned = append(scanned, v)
			return true
		})
		for i := range scanned {
			if scanned[i] != ref[len(ref)-1-i].val {
				t.Fatalf("op %d: scan mismatch at %d", op, i)
			}
		}
	}
}

func BenchmarkPushPruneScan(b *testing.B) {
	bin := New[uint64]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := int64(i)
		bin.Push(t, uint64(i))
		bin.PruneBefore(t - 1000)
		n := 0
		bin.ScanNewestFirst(func(_ int64, _ uint64) bool {
			n++
			return n < 16
		})
	}
}

func TestBinShrinksAfterBurst(t *testing.T) {
	b := New[int]()
	for i := 0; i < 4096; i++ {
		b.Push(int64(i), i)
	}
	if b.Cap() < 4096 {
		t.Fatalf("burst capacity %d", b.Cap())
	}
	for i := 0; i < 20 && b.Cap() > MinShrinkCap; i++ {
		b.PruneBefore(4090)
	}
	if got := b.Cap(); got != MinShrinkCap {
		t.Fatalf("capacity after burst = %d, want %d", got, MinShrinkCap)
	}
	want := []int{4090, 4091, 4092, 4093, 4094, 4095}
	if got := b.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("surviving entries %v, want %v", got, want)
	}
}

func TestBinNeverShrinksBelowFloor(t *testing.T) {
	b := New[int]()
	b.Push(1, 1)
	b.PruneBefore(100)
	if got := b.Cap(); got > MinShrinkCap {
		t.Fatalf("Cap = %d, want <= floor %d", got, MinShrinkCap)
	}
	// Shrinking must preserve push/scan behaviour afterwards.
	b.Push(200, 7)
	if got := b.Snapshot(); !reflect.DeepEqual(got, []int{7}) {
		t.Fatalf("post-shrink contents %v", got)
	}
}
