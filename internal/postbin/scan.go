package postbin

import "math/bits"

// NextWithin is the batched content-scan kernel behind the exact coverage
// path: it scans fps backward from index from (inclusive) and returns the
// largest index i with popcount(fps[i]^ref) <= maxDist, or -1 when no
// element qualifies. maxDist must be in [0, 64] (the fingerprint width; the
// thresholds layer validates this). Scanning backward over an oldest-to-newest segment is
// the paper's newest-first comparison order; callers that must apply a
// second per-candidate check (UniBin's author dimension) re-enter with
// from = i-1 to continue the scan, and account one comparison per element
// the kernel visited, preserving the sequential cost model exactly.
//
// The main loop is unrolled 8-wide over a re-sliced block so the bounds
// check is paid once per block, the eight XOR+POPCNT chains are independent
// (they pipeline; on amd64 each is one XORQ+POPCNTQ), and the eight
// threshold tests collapse into a branch-free match mask tested once.
func NextWithin(fps []uint64, ref uint64, maxDist, from int) int {
	i := from
	if i >= len(fps) {
		i = len(fps) - 1
	}
	// SWAR block test: the eight popcounts (each ≤ 64) are packed one per
	// byte; adding 127-maxDist to every byte sets a byte's high bit exactly
	// when its distance exceeds maxDist (64+127 < 256, so bytes never carry
	// into each other). The complemented high bits are then a match mask
	// tested with one branch per block.
	bias := uint64(127-maxDist) * 0x0101010101010101
	for i >= 7 {
		b := fps[i-7 : i+1 : i+1]
		w := uint64(bits.OnesCount64(b[0]^ref)) |
			uint64(bits.OnesCount64(b[1]^ref))<<8 |
			uint64(bits.OnesCount64(b[2]^ref))<<16 |
			uint64(bits.OnesCount64(b[3]^ref))<<24 |
			uint64(bits.OnesCount64(b[4]^ref))<<32 |
			uint64(bits.OnesCount64(b[5]^ref))<<40 |
			uint64(bits.OnesCount64(b[6]^ref))<<48 |
			uint64(bits.OnesCount64(b[7]^ref))<<56
		if m := ^(w + bias) & 0x8080808080808080; m != 0 {
			// Highest set byte = newest match in the block.
			return i - 7 + (bits.Len64(m)-1)>>3
		}
		i -= 8
	}
	for ; i >= 0; i-- {
		if bits.OnesCount64(fps[i]^ref) <= maxDist {
			return i
		}
	}
	return -1
}
