package postbin

import (
	"math/bits"
	"math/rand"
	"testing"
)

// naiveNextWithin is the obviously-correct scalar spec NextWithin must match.
func naiveNextWithin(fps []uint64, ref uint64, maxDist, from int) int {
	if from >= len(fps) {
		from = len(fps) - 1
	}
	for i := from; i >= 0; i-- {
		if bits.OnesCount64(fps[i]^ref) <= maxDist {
			return i
		}
	}
	return -1
}

func TestNextWithinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 3000; trial++ {
		n := rng.Intn(40)
		fps := make([]uint64, n)
		ref := rng.Uint64()
		for i := range fps {
			// Mix near-misses and far fingerprints so every maxDist band is hit.
			fp := ref
			for f := rng.Intn(24); f > 0; f-- {
				fp ^= 1 << uint(rng.Intn(64))
			}
			fps[i] = fp
		}
		maxDist := rng.Intn(22)
		for from := -1; from <= n+1; from++ {
			got := NextWithin(fps, ref, maxDist, from)
			want := naiveNextWithin(fps, ref, maxDist, from)
			if got != want {
				t.Fatalf("NextWithin(n=%d, maxDist=%d, from=%d) = %d, want %d",
					n, maxDist, from, got, want)
			}
		}
	}
}

func TestNextWithinEdgeDistances(t *testing.T) {
	fps := []uint64{0, ^uint64(0), 0xFFFF, 1}
	// maxDist 64 matches everything: newest-first means index 3.
	if got := NextWithin(fps, 0, 64, len(fps)-1); got != 3 {
		t.Fatalf("maxDist=64: got %d, want 3", got)
	}
	// maxDist 0 is exact equality.
	if got := NextWithin(fps, 0xFFFF, 0, len(fps)-1); got != 2 {
		t.Fatalf("exact match: got %d, want 2", got)
	}
	if got := NextWithin(nil, 0, 64, 0); got != -1 {
		t.Fatalf("empty slice: got %d, want -1", got)
	}
}

func BenchmarkNextWithin(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	fps := make([]uint64, 4096)
	for i := range fps {
		fps[i] = rng.Uint64()
	}
	b.Run("kernel", func(b *testing.B) {
		b.SetBytes(int64(len(fps) * 8))
		for i := 0; i < b.N; i++ {
			// No match at distance 6 among random words: full traversal.
			if NextWithin(fps, 0x1234, 6, len(fps)-1) != -1 {
				b.Fatal("unexpected match")
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.SetBytes(int64(len(fps) * 8))
		for i := 0; i < b.N; i++ {
			if naiveNextWithin(fps, 0x1234, 6, len(fps)-1) != -1 {
				b.Fatal("unexpected match")
			}
		}
	})
}
