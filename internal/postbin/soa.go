package postbin

import "fmt"

// SoA is the hot-path variant of Bin, specialized for the decision loop's
// scan payload: a structure-of-arrays circular buffer holding SimHash
// fingerprints, author ids and timestamps in three parallel slices. The
// layout exists for one reason — the λt-window scan of Section 4 is the
// paper's entire cost model, and it touches every fingerprint but only the
// authors of content-similar candidates, so packing fingerprints contiguously
// (instead of interleaving them with timestamps and values as Bin's
// array-of-structs does) lets the scan stream through cache lines that are
// 100% fingerprint.
//
// Capacity is always a power of two and positions are reduced with a mask
// instead of a modulo, so the per-element cost of the scan is one AND, one
// load and one compare. Iteration is through Cursor, a closure-free value
// type the compiler can keep in registers.
//
// The semantics are exactly Bin's (property-tested against it): entries are
// pushed in non-decreasing time order, scanned newest-first and pruned from
// the old end. A burst that grows the buffer is released again by
// PruneBefore, which halves the capacity whenever occupancy falls below a
// quarter (never below MinShrinkCap).
type SoA struct {
	fps     []uint64
	authors []int32
	times   []int64
	head    int // index of oldest entry
	count   int
	mask    int   // len(fps) - 1; len is a power of two
	last    int64 // time of most recent entry, valid when count > 0
}

// NewSoA returns an empty bin. The first Push allocates MinShrinkCap capacity.
func NewSoA() *SoA {
	return &SoA{}
}

// Len returns the number of entries currently stored.
func (b *SoA) Len() int { return b.count }

// Cap returns the current capacity of the circular buffer.
func (b *SoA) Cap() int { return len(b.fps) }

// Push appends an entry. Timestamps must be non-decreasing; Push panics
// otherwise, because out-of-order insertion would silently break the
// windowed scan semantics.
func (b *SoA) Push(t int64, fp uint64, author int32) {
	if b.count > 0 && t < b.last {
		panic(fmt.Sprintf("postbin: out-of-order push: %d after %d", t, b.last))
	}
	if b.count == len(b.fps) {
		b.resize(max(MinShrinkCap, 2*len(b.fps)))
	}
	idx := (b.head + b.count) & b.mask
	b.fps[idx] = fp
	b.authors[idx] = author
	b.times[idx] = t
	b.count++
	b.last = t
}

// resize moves the live entries into fresh parallel slices of capacity
// newCap (a power of two >= count) and rebases head to 0.
func (b *SoA) resize(newCap int) {
	fps := make([]uint64, newCap)
	authors := make([]int32, newCap)
	times := make([]int64, newCap)
	for i := 0; i < b.count; i++ {
		idx := (b.head + i) & b.mask
		fps[i] = b.fps[idx]
		authors[i] = b.authors[idx]
		times[i] = b.times[idx]
	}
	b.fps, b.authors, b.times = fps, authors, times
	b.head = 0
	b.mask = newCap - 1
}

// PruneBefore removes all entries with time < cutoff from the old end and
// returns the number removed. When occupancy drops below a quarter of the
// capacity it halves the buffer (floor MinShrinkCap), so the peak footprint
// of a traffic burst is not pinned for the rest of the stream.
func (b *SoA) PruneBefore(cutoff int64) int {
	removed := 0
	for b.count > 0 && b.times[b.head] < cutoff {
		b.head = (b.head + 1) & b.mask
		b.count--
		removed++
	}
	if b.count == 0 {
		b.head = 0
	}
	if c := len(b.fps); c > MinShrinkCap && b.count < c/4 {
		b.resize(max(MinShrinkCap, c/2))
	}
	return removed
}

// OldestTime returns the timestamp of the oldest entry, or ok=false when the
// bin is empty.
func (b *SoA) OldestTime() (t int64, ok bool) {
	if b.count == 0 {
		return 0, false
	}
	return b.times[b.head], true
}

// NewestTime returns the timestamp of the most recent entry, or ok=false
// when the bin is empty.
func (b *SoA) NewestTime() (t int64, ok bool) {
	if b.count == 0 {
		return 0, false
	}
	return b.last, true
}

// FPSegments returns the stored fingerprints as up to two contiguous slices:
// concatenated, older then newer is the oldest-to-newest order (newer is nil
// while the buffer hasn't wrapped). The slices alias the bin's storage and
// are invalidated by any Push or PruneBefore — they exist so a scan-bound
// caller can run a tight backward loop over raw memory instead of paying the
// cursor's per-element index arithmetic.
//
// Invalidation contract (audited; see TestSegmentsInvalidationContract): a
// mutation may leave stale segments aliasing live storage (an in-place Push
// or head advance — the stale view then shows a mix of old and new entries)
// or may move the live entries to a fresh backing array entirely (a growth
// resize, or the shrink a PruneBefore triggers when occupancy falls below a
// quarter — the stale view then shows only pre-mutation data and writes
// through it are lost). Neither case faults, which is exactly why the hazard
// is easy to miss: stale segments read plausible values. The only correct
// use is acquire → scan → discard, re-acquiring after every mutation, and
// never acquiring FP/Author/Time segments across a mutation (a PruneBefore
// between two accessors can desynchronize their indexing).
func (b *SoA) FPSegments() (older, newer []uint64) {
	end := b.head + b.count
	if end <= len(b.fps) {
		return b.fps[b.head:end], nil
	}
	return b.fps[b.head:], b.fps[:end&b.mask]
}

// AuthorSegments returns the stored author ids segmented exactly like
// FPSegments: older[i] and newer[i] are the authors of the same entries as
// the fingerprint segments' older[i] and newer[i].
func (b *SoA) AuthorSegments() (older, newer []int32) {
	end := b.head + b.count
	if end <= len(b.authors) {
		return b.authors[b.head:end], nil
	}
	return b.authors[b.head:], b.authors[:end&b.mask]
}

// TimeSegments returns the stored timestamps segmented exactly like
// FPSegments: older[i] and newer[i] are the timestamps of the same entries as
// the fingerprint segments' older[i] and newer[i]. Like the other segment
// accessors the slices alias the bin's storage and are invalidated by any
// Push or PruneBefore; checkpoint writers walk them oldest-to-newest.
func (b *SoA) TimeSegments() (older, newer []int64) {
	end := b.head + b.count
	if end <= len(b.times) {
		return b.times[b.head:end], nil
	}
	return b.times[b.head:], b.times[:end&b.mask]
}

// Scan returns a newest-first cursor over the live entries. The cursor is a
// value; iterating allocates nothing:
//
//	for cur := b.Scan(); cur.Next(); {
//		use(cur.FP(), cur.Author(), cur.Time())
//	}
//
// The cursor is invalidated by any Push or PruneBefore on the bin.
func (b *SoA) Scan() Cursor {
	return Cursor{bin: b, remaining: b.count}
}

// Cursor iterates a SoA bin newest-first without closures. Obtain one from
// Scan; call Next before each access.
type Cursor struct {
	bin       *SoA
	remaining int
	idx       int
}

// Next advances to the next (older) entry, reporting whether one exists.
func (c *Cursor) Next() bool {
	if c.remaining == 0 {
		return false
	}
	c.remaining--
	c.idx = (c.bin.head + c.remaining) & c.bin.mask
	return true
}

// FP returns the fingerprint at the cursor.
func (c *Cursor) FP() uint64 { return c.bin.fps[c.idx] }

// Author returns the author id at the cursor.
func (c *Cursor) Author() int32 { return c.bin.authors[c.idx] }

// Time returns the timestamp at the cursor.
func (c *Cursor) Time() int64 { return c.bin.times[c.idx] }
