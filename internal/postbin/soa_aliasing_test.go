package postbin

import (
	"math/rand"
	"testing"
)

// collectSegments snapshots the bin's current contents via the segment
// accessors, concatenated oldest-to-newest.
func collectSegments(b *SoA) (fps []uint64, authors []int32, times []int64) {
	fOld, fNew := b.FPSegments()
	aOld, aNew := b.AuthorSegments()
	tOld, tNew := b.TimeSegments()
	fps = append(append(fps, fOld...), fNew...)
	authors = append(append(authors, aOld...), aNew...)
	times = append(append(times, tOld...), tNew...)
	return
}

// TestSegmentsInvalidationContract is the audit of the segment accessors'
// aliasing hazard. Part one pins the positive contract: segments re-acquired
// after every mutation always agree with the cursor, across random
// Push/PruneBefore sequences that exercise wraps, growth resizes and
// shrink-on-prune. Part two demonstrates the hazard itself: segments
// captured before a PruneBefore-triggered shrink keep aliasing the OLD
// backing array — they still read plausible pre-shrink values and never see
// later mutations, which is why stale segments are a silent-corruption bug
// in callers, not a crash.
func TestSegmentsInvalidationContract(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	b := NewSoA()
	var now int64
	for step := 0; step < 5000; step++ {
		if rng.Intn(3) < 2 {
			now += int64(rng.Intn(4))
			b.Push(now, rng.Uint64(), int32(rng.Intn(100)))
		} else {
			b.PruneBefore(now - int64(rng.Intn(400)))
		}

		// Freshly acquired segments must agree with the cursor exactly.
		fps, authors, times := collectSegments(b)
		if len(fps) != b.Len() || len(authors) != b.Len() || len(times) != b.Len() {
			t.Fatalf("step %d: segment lengths %d/%d/%d, Len %d",
				step, len(fps), len(authors), len(times), b.Len())
		}
		i := b.Len()
		for cur := b.Scan(); cur.Next(); {
			i--
			if fps[i] != cur.FP() || authors[i] != cur.Author() || times[i] != cur.Time() {
				t.Fatalf("step %d: segment entry %d = (%x,%d,%d), cursor = (%x,%d,%d)",
					step, i, fps[i], authors[i], times[i], cur.FP(), cur.Author(), cur.Time())
			}
		}
	}

	// The hazard: capture segments, then force a shrink resize.
	b = NewSoA()
	for i := 0; i < 4*MinShrinkCap; i++ {
		b.Push(int64(i), uint64(i)|1<<63, 1)
	}
	staleOld, staleNew := b.FPSegments()
	stale := append(append([]uint64(nil), staleOld...), staleNew...)
	preCap := b.Cap()
	b.PruneBefore(int64(4*MinShrinkCap - 2)) // occupancy 2 of 256: shrink fires
	if b.Cap() >= preCap {
		t.Fatalf("prune did not shrink (cap %d -> %d); hazard scenario not reached", preCap, b.Cap())
	}
	// staleOld still reads the pre-shrink values out of the abandoned array:
	// plausible data, silently divorced from the bin.
	for i := range staleOld {
		if staleOld[i] != stale[i] {
			t.Fatalf("stale segment no longer readable at %d", i)
		}
	}
	b.Push(int64(4*MinShrinkCap), 0xDEAD, 2)
	fresh, _ := b.FPSegments()
	if &staleOld[0] == &fresh[0] {
		t.Fatal("shrink kept the backing array; stale segments were expected to alias the old one")
	}
}
