package postbin

import (
	"math/rand"
	"reflect"
	"testing"
)

func soaContents(b *SoA) (fps []uint64, authors []int32, times []int64) {
	// Collect newest-first via the cursor, then reverse to oldest-first.
	for cur := b.Scan(); cur.Next(); {
		fps = append(fps, cur.FP())
		authors = append(authors, cur.Author())
		times = append(times, cur.Time())
	}
	for i, j := 0, len(fps)-1; i < j; i, j = i+1, j-1 {
		fps[i], fps[j] = fps[j], fps[i]
		authors[i], authors[j] = authors[j], authors[i]
		times[i], times[j] = times[j], times[i]
	}
	return fps, authors, times
}

func TestSoAEmpty(t *testing.T) {
	b := NewSoA()
	if b.Len() != 0 || b.Cap() != 0 {
		t.Fatalf("Len=%d Cap=%d", b.Len(), b.Cap())
	}
	if _, ok := b.OldestTime(); ok {
		t.Fatal("OldestTime on empty should report !ok")
	}
	if _, ok := b.NewestTime(); ok {
		t.Fatal("NewestTime on empty should report !ok")
	}
	if got := b.PruneBefore(100); got != 0 {
		t.Fatalf("PruneBefore on empty = %d", got)
	}
	cur := b.Scan()
	if cur.Next() {
		t.Fatal("cursor on empty bin must report no entries")
	}
}

func TestSoAPushScanOrder(t *testing.T) {
	b := NewSoA()
	b.Push(1, 10, 100)
	b.Push(2, 20, 200)
	b.Push(2, 30, 300) // ties allowed
	b.Push(5, 40, 400)
	var fps []uint64
	var authors []int32
	var times []int64
	for cur := b.Scan(); cur.Next(); {
		fps = append(fps, cur.FP())
		authors = append(authors, cur.Author())
		times = append(times, cur.Time())
	}
	if !reflect.DeepEqual(fps, []uint64{40, 30, 20, 10}) {
		t.Fatalf("fps newest-first = %v", fps)
	}
	if !reflect.DeepEqual(authors, []int32{400, 300, 200, 100}) {
		t.Fatalf("authors newest-first = %v", authors)
	}
	if !reflect.DeepEqual(times, []int64{5, 2, 2, 1}) {
		t.Fatalf("times newest-first = %v", times)
	}
}

func TestSoAOutOfOrderPushPanics(t *testing.T) {
	b := NewSoA()
	b.Push(10, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order push must panic")
		}
	}()
	b.Push(9, 2, 2)
}

func TestSoACapacityIsPowerOfTwo(t *testing.T) {
	b := NewSoA()
	for i := 0; i < 1000; i++ {
		b.Push(int64(i), uint64(i), int32(i))
		if c := b.Cap(); c&(c-1) != 0 {
			t.Fatalf("capacity %d is not a power of two", c)
		}
	}
}

func TestSoAPruneAndWrap(t *testing.T) {
	b := NewSoA()
	// Interleave pushes and prunes so head wraps around the buffer many
	// times while occupancy stays near the window size.
	window := int64(50)
	next := int64(0)
	for i := 0; i < 2000; i++ {
		b.Push(next, uint64(i), int32(i))
		next += 3
		b.PruneBefore(next - window)
		if oldest, ok := b.OldestTime(); !ok || oldest < next-window {
			t.Fatalf("step %d: oldest %d below cutoff %d", i, oldest, next-window)
		}
	}
	// All remaining entries must be in window and ordered.
	_, _, times := soaContents(b)
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("times out of order: %v", times)
		}
	}
}

func TestSoAShrinksAfterBurst(t *testing.T) {
	b := NewSoA()
	for i := 0; i < 4096; i++ {
		b.Push(int64(i), uint64(i), int32(i))
	}
	peak := b.Cap()
	if peak < 4096 {
		t.Fatalf("burst capacity %d", peak)
	}
	// Evict everything but a handful; repeated prunes must walk the
	// capacity back down to the floor.
	b.PruneBefore(4090)
	for i := 0; i < 20 && b.Cap() > MinShrinkCap; i++ {
		b.PruneBefore(4090)
	}
	if got := b.Cap(); got != MinShrinkCap {
		t.Fatalf("capacity after burst = %d, want %d", got, MinShrinkCap)
	}
	if b.Len() != 6 {
		t.Fatalf("Len after prune = %d", b.Len())
	}
	fps, _, _ := soaContents(b)
	if !reflect.DeepEqual(fps, []uint64{4090, 4091, 4092, 4093, 4094, 4095}) {
		t.Fatalf("surviving entries %v", fps)
	}
}

func TestSoANeverShrinksBelowFloor(t *testing.T) {
	b := NewSoA()
	b.Push(1, 1, 1)
	b.PruneBefore(100)
	if b.Len() != 0 {
		t.Fatalf("Len = %d", b.Len())
	}
	if got := b.Cap(); got != MinShrinkCap {
		t.Fatalf("Cap = %d, want floor %d", got, MinShrinkCap)
	}
}

// TestSoAMatchesGenericBin drives an SoA bin and the generic Bin through the
// same random push/prune schedule and checks they agree on contents, length
// and boundary times at every step — SoA is a layout change, not a semantics
// change.
func TestSoAMatchesGenericBin(t *testing.T) {
	type pair struct {
		fp     uint64
		author int32
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		soa := NewSoA()
		ref := New[pair]()
		now := int64(0)
		for step := 0; step < 500; step++ {
			switch {
			case soa.Len() == 0 || rng.Intn(3) > 0:
				now += int64(rng.Intn(5))
				fp, author := rng.Uint64(), int32(rng.Intn(1000))
				soa.Push(now, fp, author)
				ref.Push(now, pair{fp, author})
			default:
				cutoff := now - int64(rng.Intn(40))
				if got, want := soa.PruneBefore(cutoff), ref.PruneBefore(cutoff); got != want {
					t.Fatalf("trial %d step %d: pruned %d, generic bin pruned %d", trial, step, got, want)
				}
			}
			if soa.Len() != ref.Len() {
				t.Fatalf("trial %d step %d: Len %d vs %d", trial, step, soa.Len(), ref.Len())
			}
			ot1, ok1 := soa.OldestTime()
			ot2, ok2 := ref.OldestTime()
			if ot1 != ot2 || ok1 != ok2 {
				t.Fatalf("trial %d step %d: OldestTime (%d,%v) vs (%d,%v)", trial, step, ot1, ok1, ot2, ok2)
			}
			fps, authors, _ := soaContents(soa)
			want := ref.Snapshot()
			for i, p := range want {
				if fps[i] != p.fp || authors[i] != p.author {
					t.Fatalf("trial %d step %d entry %d: (%d,%d) vs (%d,%d)",
						trial, step, i, fps[i], authors[i], p.fp, p.author)
				}
			}
		}
	}
}

func TestSoACursorEarlyStop(t *testing.T) {
	b := NewSoA()
	for i := 0; i < 10; i++ {
		b.Push(int64(i), uint64(i), int32(i))
	}
	// A caller breaking out mid-scan and re-scanning must see a fresh
	// newest-first iteration.
	cur := b.Scan()
	cur.Next()
	if cur.FP() != 9 {
		t.Fatalf("first = %d", cur.FP())
	}
	cur = b.Scan()
	cur.Next()
	if cur.FP() != 9 {
		t.Fatalf("rescan first = %d", cur.FP())
	}
}

// TestSoASegmentsMatchCursor checks FPSegments/AuthorSegments against the
// cursor across a schedule that wraps the ring repeatedly: the concatenation
// older++newer must be the oldest-to-newest contents.
func TestSoASegmentsMatchCursor(t *testing.T) {
	b := NewSoA()
	window := int64(200)
	next := int64(0)
	for i := 0; i < 3000; i++ {
		b.Push(next, uint64(i*31), int32(i%97))
		next += 3
		b.PruneBefore(next - window)

		wantFPs, wantAuthors, _ := soaContents(b)
		fpOld, fpNew := b.FPSegments()
		auOld, auNew := b.AuthorSegments()
		if len(fpOld)+len(fpNew) != len(wantFPs) || len(auOld)+len(auNew) != len(wantAuthors) {
			t.Fatalf("step %d: segment lengths %d+%d / %d+%d, want %d entries",
				i, len(fpOld), len(fpNew), len(auOld), len(auNew), len(wantFPs))
		}
		gotFPs := append(append([]uint64(nil), fpOld...), fpNew...)
		gotAuthors := append(append([]int32(nil), auOld...), auNew...)
		for j := range wantFPs {
			if gotFPs[j] != wantFPs[j] || gotAuthors[j] != wantAuthors[j] {
				t.Fatalf("step %d entry %d: segments give (%d,%d), cursor (%d,%d)",
					i, j, gotFPs[j], gotAuthors[j], wantFPs[j], wantAuthors[j])
			}
		}
	}
}
