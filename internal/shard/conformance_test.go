package shard

import (
	"context"
	"testing"

	"firehose/internal/connector"
	"firehose/internal/connector/connectortest"
)

// ingestWorld binds the inter-shard transport input to the connectortest
// conformance suite. Like the plain HTTP push adapter, submits are synchronous
// — Feed runs them in one goroutine so each blocks until the suite completes
// the read message. The suite stamps seq i+1 on every read; the router side
// assigns the same ids here, so the round trip matches.
type ingestWorld struct{}

func (ingestWorld) New(t *testing.T) connector.Input { return NewIngestInput(4) }

func (ingestWorld) Feed(t *testing.T, in connector.Input, msgs []connector.Message) {
	ii := in.(*IngestInput)
	go func() {
		for i, m := range msgs {
			// ErrClosed here just means the test tore the input down early.
			_, _ = ii.Submit(context.Background(), uint64(i+1), m.Author, m.TimeMillis, m.Text)
		}
	}()
}

func TestIngestInputConformance(t *testing.T) {
	connectortest.RunInput(t, connectortest.InputHarness{
		Name:  "shard-ingest",
		Setup: func(t *testing.T) connectortest.InputWorld { return ingestWorld{} },
	})
}
