package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"firehose/internal/authorsim"
	"firehose/internal/core"
	"firehose/internal/httpapi"
)

// The router property: plugged into httpapi.NewFromEngine, a sharded
// deployment answers the byte-identical ingest decisions of a single node —
// same ids, same delivered-user sets, same timelines — for any shard count,
// because components of G(λa) never interact and every worker runs the full
// engine configuration. The tests here run the whole stack in-process (real
// HTTP between router and workers via httptest servers); the multi-process
// SIGKILL variant lives in cmd/firehosed.

// equivSubscriptions spreads users across the test graph's six components so
// the router's per-user merge is exercised: every user spans shards at any
// shard count > 1.
func equivSubscriptions() [][]int32 {
	return [][]int32{
		{0, 1, 3, 5, 9},
		{2, 4, 6, 8, 10},
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
		{5, 8},
		{7, 11},
	}
}

// newEquivServer builds one full-configuration engine server (the same
// construction for the single node and for every worker).
func newEquivServer(t *testing.T) *httpapi.Server {
	t.Helper()
	th := core.Thresholds{LambdaC: 3, LambdaT: 30 * 60 * 1000, LambdaA: 0.7}
	md, err := core.NewSharedMultiUser(core.AlgUniBin, testGraph(), equivSubscriptions(), th)
	if err != nil {
		t.Fatal(err)
	}
	return httpapi.New(md)
}

// equivPost is the deterministic workload: author walks an LCG over the full
// universe (so similar authors post close together in time), time strictly
// increases, text cycles a few templates.
func equivPost(i int) (author int32, timeMillis int64, text string) {
	state := uint64(i)*6364136223846793005 + 1442695040888963407
	author = int32((state >> 33) % 12)
	return author, int64(1000 * (i + 1)), fmt.Sprintf("post %d from author %d", i, author)
}

// shardedStack is one in-process deployment: n workers behind httptest
// servers, a router engine, and the router's own API server.
type shardedStack struct {
	assign  *Assignment
	workers []*Worker
	servers []*httptest.Server
	router  *Router
	api     *httpapi.Server
}

func newShardedStack(t *testing.T, shards int) *shardedStack {
	t.Helper()
	assign, err := Plan(testGraph(), shards)
	if err != nil {
		t.Fatal(err)
	}
	st := &shardedStack{assign: assign}
	peers := make([]string, shards)
	for s := 0; s < shards; s++ {
		srv := newEquivServer(t)
		w, err := NewWorker(WorkerOptions{
			Server:        srv,
			Shard:         s,
			Assignment:    assign,
			CheckpointDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		t.Cleanup(func() { _ = w.Close() })
		st.workers = append(st.workers, w)
		st.servers = append(st.servers, ts)
		peers[s] = ts.URL
	}
	rt, err := NewRouter(RouterOptions{
		Peers:         peers,
		Assignment:    assign,
		RetryInterval: 5 * time.Millisecond,
		ResyncTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.InitialCoordination(); err != nil {
		t.Fatal(err)
	}
	st.router = rt
	st.api = httpapi.NewFromEngine(rt)
	st.api.SetTopology(-1, shards, assign.Digest())
	st.api.SetTopologyProvider(rt.Topology)
	return st
}

// do drives one request against a server's mux and decodes the response.
func do(t *testing.T, s *httpapi.Server, method, path, body string, out any) (int, string) {
	t.Helper()
	var r *strings.Reader
	if body != "" {
		r = strings.NewReader(body)
	} else {
		r = strings.NewReader("")
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(method, path, r))
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %s: %v", method, path, rec.Body, err)
		}
	}
	return rec.Code, rec.Body.String()
}

func ingestBody(author int32, timeMillis int64, text string) string {
	b, _ := json.Marshal(map[string]any{"author": author, "timeMillis": timeMillis, "text": text})
	return string(b)
}

func timelineIDs(t *testing.T, s *httpapi.Server, user int) []uint64 {
	t.Helper()
	var resp struct {
		Posts []struct {
			ID uint64 `json:"id"`
		} `json:"posts"`
	}
	code, body := do(t, s, "GET", fmt.Sprintf("/v1/timeline?user=%d&n=100000", user), "", &resp)
	if code != http.StatusOK {
		t.Fatalf("timeline user %d: %d %s", user, code, body)
	}
	ids := make([]uint64, len(resp.Posts))
	for i, p := range resp.Posts {
		ids[i] = p.ID
	}
	return ids
}

func TestShardedDecisionEquivalence(t *testing.T) {
	const posts = 150
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("%dshards", shards), func(t *testing.T) {
			single := newEquivServer(t)
			st := newShardedStack(t, shards)

			lastSeen := make(map[int32]uint64) // per-user delivery monotonicity
			for i := 0; i < posts; i++ {
				author, tm, text := equivPost(i)
				body := ingestBody(author, tm, text)

				var want, got httpapi.IngestResponse
				wantCode, wantBody := do(t, single, "POST", "/v1/ingest", body, &want)
				gotCode, gotBody := do(t, st.api, "POST", "/v1/ingest", body, &got)
				if wantCode != gotCode {
					t.Fatalf("post %d: single answered %d (%s), sharded %d (%s)", i, wantCode, wantBody, gotCode, gotBody)
				}
				if wantCode != http.StatusOK {
					continue
				}
				if want.ID != got.ID {
					t.Fatalf("post %d: id %d vs %d", i, want.ID, got.ID)
				}
				if fmt.Sprint(want.Delivered) != fmt.Sprint(got.Delivered) {
					t.Fatalf("post %d (id %d): delivered %v on single, %v sharded", i, want.ID, want.Delivered, got.Delivered)
				}
				for _, u := range got.Delivered {
					if got.ID <= lastSeen[u] {
						t.Fatalf("post id %d delivered to user %d after id %d: merge not seq-monotone", got.ID, u, lastSeen[u])
					}
					lastSeen[u] = got.ID
				}
			}

			for u := range equivSubscriptions() {
				w, g := timelineIDs(t, single, u), timelineIDs(t, st.api, u)
				if fmt.Sprint(w) != fmt.Sprint(g) {
					t.Fatalf("user %d timeline: single %v, sharded %v", u, w, g)
				}
			}
		})
	}
}

func TestShardedBatchEquivalence(t *testing.T) {
	const posts, batch = 120, 8
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("%dshards", shards), func(t *testing.T) {
			single := newEquivServer(t)
			st := newShardedStack(t, shards)

			for i := 0; i < posts; i += batch {
				var reqs []map[string]any
				for j := i; j < i+batch && j < posts; j++ {
					author, tm, text := equivPost(j)
					reqs = append(reqs, map[string]any{"author": author, "timeMillis": tm, "text": text})
				}
				raw, _ := json.Marshal(map[string]any{"posts": reqs})

				var want, got httpapi.BatchIngestResponse
				wantCode, wantBody := do(t, single, "POST", "/v1/ingest/batch", string(raw), &want)
				gotCode, gotBody := do(t, st.api, "POST", "/v1/ingest/batch", string(raw), &got)
				if wantCode != gotCode {
					t.Fatalf("batch at %d: single %d (%s), sharded %d (%s)", i, wantCode, wantBody, gotCode, gotBody)
				}
				if wantCode != http.StatusOK {
					continue
				}
				if len(want.Results) != len(got.Results) {
					t.Fatalf("batch at %d: %d vs %d results", i, len(want.Results), len(got.Results))
				}
				for k := range want.Results {
					if want.Results[k].ID != got.Results[k].ID ||
						fmt.Sprint(want.Results[k].Delivered) != fmt.Sprint(got.Results[k].Delivered) {
						t.Fatalf("batch at %d result %d: single %+v, sharded %+v", i, k, want.Results[k], got.Results[k])
					}
				}
			}

			for u := range equivSubscriptions() {
				w, g := timelineIDs(t, single, u), timelineIDs(t, st.api, u)
				if fmt.Sprint(w) != fmt.Sprint(g) {
					t.Fatalf("user %d timeline: single %v, sharded %v", u, w, g)
				}
			}
		})
	}
}

// TestRouterRecoversCrashedWorker is the in-process crash drill: a worker
// process dies (its server stops, all engine state lost) and comes back cold
// on the same address; the next forward must transparently roll it back to
// the last coordinated round, replay the pending suffix, and produce the
// exact decisions an uninterrupted single node produces.
func TestRouterRecoversCrashedWorker(t *testing.T) {
	const shards = 2
	assign, err := Plan(testGraph(), shards)
	if err != nil {
		t.Fatal(err)
	}
	single := newEquivServer(t)

	dirs := make([]string, shards)
	addrs := make([]string, shards)
	peers := make([]string, shards)
	servers := make([]*httptest.Server, shards)
	workers := make([]*Worker, shards)
	start := func(s int) {
		t.Helper()
		srv := newEquivServer(t)
		w, err := NewWorker(WorkerOptions{Server: srv, Shard: s, Assignment: assign, CheckpointDir: dirs[s]})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", addrs[s])
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewUnstartedServer(srv)
		ts.Listener.Close()
		ts.Listener = ln
		ts.Start()
		servers[s], workers[s] = ts, w
	}
	for s := 0; s < shards; s++ {
		dirs[s] = t.TempDir()
		addrs[s] = "127.0.0.1:0"
		start(s)
		addrs[s] = servers[s].Listener.Addr().String() // restarts rebind here
		peers[s] = "http://" + addrs[s]
	}
	defer func() {
		for s := range servers {
			servers[s].Close()
			_ = workers[s].Close()
		}
	}()

	rt, err := NewRouter(RouterOptions{
		Peers:         peers,
		Assignment:    assign,
		RetryInterval: 10 * time.Millisecond,
		ResyncTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.InitialCoordination(); err != nil {
		t.Fatal(err)
	}
	api := httpapi.NewFromEngine(rt)

	offer := func(i int) {
		t.Helper()
		author, tm, text := equivPost(i)
		body := ingestBody(author, tm, text)
		var want, got httpapi.IngestResponse
		wantCode, _ := do(t, single, "POST", "/v1/ingest", body, &want)
		gotCode, gotBody := do(t, api, "POST", "/v1/ingest", body, &got)
		if wantCode != gotCode || (wantCode == http.StatusOK &&
			(want.ID != got.ID || fmt.Sprint(want.Delivered) != fmt.Sprint(got.Delivered))) {
			t.Fatalf("post %d: single %d %+v, sharded %d %+v (%s)", i, wantCode, want, gotCode, got, gotBody)
		}
	}

	for i := 0; i < 40; i++ {
		offer(i)
	}
	// Coordinate mid-stream (as the periodic checkpoint would), then keep
	// ingesting so the crash loses both checkpointed and pending state.
	if _, _, err := rt.coordinate(); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 70; i++ {
		offer(i)
	}

	// Crash shard 0: the server stops, the engine state evaporates. Restart it
	// cold over the same checkpoint directory and address.
	servers[0].Close()
	_ = workers[0].Close()
	start(0)

	// The next forwards recover transparently and stay bit-identical.
	for i := 70; i < 110; i++ {
		offer(i)
	}

	// Decision state recovers exactly; timeline view state follows the repo's
	// restore semantics (timelines are deliberately not checkpointed — see
	// internal/stream/checkpoint.go), so the restarted shard serves only its
	// post-restore suffix. Assert the merged timeline is an ordered subset of
	// the single node's and misses nothing delivered after the crash.
	const crashWatermark = 70 // ids 1..70 were ingested before the crash
	for u := range equivSubscriptions() {
		w, g := timelineIDs(t, single, u), timelineIDs(t, api, u)
		j := 0
		for _, id := range g {
			for j < len(w) && w[j] != id {
				j++
			}
			if j == len(w) {
				t.Fatalf("user %d: sharded timeline %v is not an ordered subset of single %v", u, g, w)
			}
			j++
		}
		inSharded := make(map[uint64]bool, len(g))
		for _, id := range g {
			inSharded[id] = true
		}
		for _, id := range w {
			if id > crashWatermark && !inSharded[id] {
				t.Fatalf("user %d: post %d delivered after the crash is missing from the sharded timeline %v", u, id, g)
			}
		}
	}
}

// TestCoordinateRollsBackPhantomState pins the coordination round's
// pre-checkpoint verification. A worker can hold state the router never
// recorded — the canonical producer is a partially failed OfferBatch, where
// one shard ingested its sub-batch, the batch failed as a unit, and the HTTP
// layer rolled the ids back without anything landing in pending. A
// coordination round must not bake that phantom state into the tagged
// checkpoint: it verifies (and heals) every worker against the replay buffer
// before requesting the checkpoint.
func TestCoordinateRollsBackPhantomState(t *testing.T) {
	single := newEquivServer(t)
	st := newShardedStack(t, 2)

	offer := func(i int) {
		t.Helper()
		author, tm, text := equivPost(i)
		body := ingestBody(author, tm, text)
		var want, got httpapi.IngestResponse
		wantCode, _ := do(t, single, "POST", "/v1/ingest", body, &want)
		gotCode, gotBody := do(t, st.api, "POST", "/v1/ingest", body, &got)
		if wantCode != gotCode || (wantCode == http.StatusOK &&
			(want.ID != got.ID || fmt.Sprint(want.Delivered) != fmt.Sprint(got.Delivered))) {
			t.Fatalf("post %d: single %d %+v, sharded %d %+v (%s)", i, wantCode, want, gotCode, got, gotBody)
		}
	}

	for i := 0; i < 30; i++ {
		offer(i)
	}
	if _, _, err := st.router.coordinate(); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 40; i++ {
		offer(i)
	}

	// Inject the phantom: ingest a post directly into one worker, exactly as a
	// failed batch's surviving sub-batch would have. The forward is wellformed
	// (correct topology, correct Prev), so the worker accepts it — but the
	// router never records it.
	const phantomAuthor = 0
	shard := st.assign.ShardOf(phantomAuthor)
	exp := st.router.expected(shard)
	raw, _ := json.Marshal(IngestRequest{ID: 1000, Prev: exp, Author: phantomAuthor, TimeMillis: 10_000_000, Text: "phantom sub-batch"})
	req, err := http.NewRequest("POST", st.servers[shard].URL+"/v1/shard/ingest", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TopologyHeader, formatTopology(st.assign.Digest(), shard, 2))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("phantom ingest: status %d", resp.StatusCode)
	}

	// The coordination round must succeed — healing the desynced worker first —
	// and adopt exactly the watermark the replay buffer predicts, not the
	// phantom one.
	_, seqs, err := st.router.coordinate()
	if err != nil {
		t.Fatalf("coordinate over phantom worker state: %v", err)
	}
	if seqs[shard] != exp {
		t.Fatalf("coordinate adopted watermark %d for shard %d, want the pre-phantom %d", seqs[shard], shard, exp)
	}

	// The stream continues in lockstep: the phantom post (and its far-future
	// timestamp, which would poison the disorder checks if it survived) left no
	// trace. Decision state heals exactly; timeline view state follows the
	// repo's restore semantics (timelines are deliberately not checkpointed —
	// see internal/stream/checkpoint.go), so the healed shard serves its
	// post-rollback suffix: the merged timeline must be an ordered subset of
	// the single node's and miss nothing delivered after the rollback round.
	for i := 40; i < 70; i++ {
		offer(i)
	}
	const rollbackWatermark = 30 // the phantom healed by rolling back to the round at id 30
	for u := range equivSubscriptions() {
		w, g := timelineIDs(t, single, u), timelineIDs(t, st.api, u)
		j := 0
		for _, id := range g {
			for j < len(w) && w[j] != id {
				j++
			}
			if j == len(w) {
				t.Fatalf("user %d: sharded timeline %v is not an ordered subset of single %v", u, g, w)
			}
			j++
		}
		inSharded := make(map[uint64]bool, len(g))
		for _, id := range g {
			inSharded[id] = true
		}
		for _, id := range w {
			if id > rollbackWatermark && !inSharded[id] {
				t.Fatalf("user %d: post %d delivered after the rollback is missing from the sharded timeline %v", u, id, g)
			}
		}
	}
}

// TestRouterPendingFullHook pins the replay-buffer bound: the buffers-full
// callback fires once when total pending reaches MaxPending, stays quiet for
// the rest of the round, and re-arms after a coordination round clears the
// buffers.
func TestRouterPendingFullHook(t *testing.T) {
	assign, err := Plan(testGraph(), 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := newEquivServer(t)
	w, err := NewWorker(WorkerOptions{Server: srv, Shard: 0, Assignment: assign, CheckpointDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rt, err := NewRouter(RouterOptions{
		Peers:         []string{ts.URL},
		Assignment:    assign,
		RetryInterval: 5 * time.Millisecond,
		ResyncTimeout: 5 * time.Second,
		MaxPending:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fired := make(chan struct{}, 4)
	rt.SetPendingFullHook(func() { fired <- struct{}{} })
	if err := rt.InitialCoordination(); err != nil {
		t.Fatal(err)
	}
	api := httpapi.NewFromEngine(rt)

	offer := func(i int) {
		t.Helper()
		author, tm, text := equivPost(i)
		if code, body := do(t, api, "POST", "/v1/ingest", ingestBody(author, tm, text), nil); code != http.StatusOK {
			t.Fatalf("post %d: %d %s", i, code, body)
		}
	}
	mustFire := func(when string) {
		t.Helper()
		select {
		case <-fired:
		case <-time.After(5 * time.Second):
			t.Fatalf("buffers-full hook did not fire %s", when)
		}
	}
	mustNotFire := func(when string) {
		t.Helper()
		select {
		case <-fired:
			t.Fatalf("buffers-full hook fired %s", when)
		default:
		}
	}

	for i := 0; i < 4; i++ {
		offer(i)
	}
	mustNotFire("below MaxPending")
	offer(4)
	mustFire("at MaxPending")
	for i := 5; i < 9; i++ {
		offer(i)
	}
	mustNotFire("twice within one coordination round")

	// A coordination round clears the buffers and re-arms the hook.
	if _, _, err := rt.coordinate(); err != nil {
		t.Fatal(err)
	}
	for i := 9; i < 14; i++ {
		offer(i)
	}
	mustFire("after the coordination round re-armed it")
}

// TestRouterRefusesForeignTopology pins the first-request refusal: a worker
// answers a router planned over a different graph with 409 shard_mismatch and
// never touches its engine.
func TestRouterRefusesForeignTopology(t *testing.T) {
	assign, err := Plan(testGraph(), 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := newEquivServer(t)
	w, err := NewWorker(WorkerOptions{Server: srv, Shard: 0, Assignment: assign})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	otherGraph := authorsim.NewGraph(12, []authorsim.SimPair{{A: 2, B: 3}}, 0.7)
	other, err := Plan(otherGraph, 2)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(IngestRequest{ID: 1, Author: 0, TimeMillis: 1000, Text: "x"})
	req := httptest.NewRequest("POST", "/v1/shard/ingest", bytes.NewReader(body))
	req.Header.Set(TopologyHeader, formatTopology(other.Digest(), 0, 2))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusConflict {
		t.Fatalf("status = %d, want 409 (%s)", rec.Code, rec.Body)
	}
	var env httpapi.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != httpapi.CodeShardMismatch {
		t.Fatalf("code = %q, want %q", env.Code, httpapi.CodeShardMismatch)
	}
	if got := srv.IDWatermark(); got != 0 {
		t.Fatalf("engine ingested %d posts through a refused request", got)
	}
}
