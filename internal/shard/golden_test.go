package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"firehose/internal/httpapi"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// The inter-shard endpoints answer with the same JSON error envelope as the
// rest of the API; these goldens pin the sharding-specific codes
// (shard_mismatch, shard_desync) byte for byte, the same way the httpapi
// suite pins the single-node codes. The test graph and its assignment digest
// are deterministic, so the messages are stable.

func TestShardErrorEnvelopesGolden(t *testing.T) {
	assign, err := Plan(testGraph(), 2)
	if err != nil {
		t.Fatal(err)
	}
	goodTopo := formatTopology(assign.Digest(), 0, 2)
	cases := []struct {
		name       string
		path, body string
		topo       string // Firehose-Topology header; empty omits it
		wantStatus int
		wantCode   string
	}{
		{
			name: "shard_ingest_no_topology",
			path: "/v1/shard/ingest", body: `{"id":1,"author":0,"timeMillis":1000,"text":"x"}`,
			wantStatus: http.StatusConflict, wantCode: httpapi.CodeShardMismatch,
		},
		{
			name: "shard_ingest_wrong_digest",
			path: "/v1/shard/ingest", body: `{"id":1,"author":0,"timeMillis":1000,"text":"x"}`,
			topo:       formatTopology(0xbadc0ffee, 0, 2),
			wantStatus: http.StatusConflict, wantCode: httpapi.CodeShardMismatch,
		},
		{
			name: "shard_ingest_foreign_author",
			path: "/v1/shard/ingest", body: `{"id":1,"author":9,"timeMillis":1000,"text":"x"}`,
			topo:       goodTopo,
			wantStatus: http.StatusConflict, wantCode: httpapi.CodeShardMismatch,
		},
		{
			name: "shard_ingest_desync",
			path: "/v1/shard/ingest", body: `{"id":7,"prev":5,"author":0,"timeMillis":1000,"text":"x"}`,
			topo:       goodTopo,
			wantStatus: http.StatusConflict, wantCode: httpapi.CodeShardDesync,
		},
		{
			name: "shard_restore_no_checkpoint",
			path: "/v1/shard/restore", body: `{"watermark":42}`,
			topo:       goodTopo,
			wantStatus: http.StatusConflict, wantCode: httpapi.CodeShardMismatch,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := newEquivServer(t)
			w, err := NewWorker(WorkerOptions{Server: srv, Shard: 0, Assignment: assign, CheckpointDir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()

			req := httptest.NewRequest("POST", tc.path, strings.NewReader(tc.body))
			if tc.topo != "" {
				req.Header.Set(TopologyHeader, tc.topo)
			}
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.wantStatus, rec.Body)
			}
			compareGolden(t, tc.name, rec.Body.Bytes())
			var env httpapi.ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("envelope does not parse: %v", err)
			}
			if env.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q", env.Code, tc.wantCode)
			}
		})
	}
}

// TestRouterTimelineUnavailableGolden pins the router-side read failure: a
// merged read that cannot reach every shard within the resync window answers
// 503 shard_unavailable through the same envelope, naming the lowest failing
// shard — never a silently partial timeline.
func TestRouterTimelineUnavailableGolden(t *testing.T) {
	assign, err := Plan(testGraph(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Port 1 and 2 refuse instantly, so the retry loop spins until the resync
	// window closes and the message's duration renders stably as "50ms".
	rt, err := NewRouter(RouterOptions{
		Peers:         []string{"http://127.0.0.1:1", "http://127.0.0.1:2"},
		Assignment:    assign,
		RetryInterval: time.Millisecond,
		ResyncTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	api := httpapi.NewFromEngine(rt)
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/timeline?user=0", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (%s)", rec.Code, rec.Body)
	}
	compareGolden(t, "timeline_shard_unavailable", rec.Body.Bytes())
	var env httpapi.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("envelope does not parse: %v", err)
	}
	if env.Code != httpapi.CodeShardUnavailable {
		t.Fatalf("code = %q, want %q", env.Code, httpapi.CodeShardUnavailable)
	}
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			t.Fatalf("golden file %s missing; run with -update", path)
		}
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("envelope drifted from golden %s:\n got: %s\nwant: %s", path, got, want)
	}
}
