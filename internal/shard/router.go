package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"firehose/internal/checkpoint"
	"firehose/internal/core"
	"firehose/internal/httpapi"
	"firehose/internal/metrics"
	"firehose/internal/stream"
)

// RouterOptions configures NewRouter. Peers and Assignment are required, and
// len(Peers) must equal Assignment.NumShards() — peer i is shard i.
type RouterOptions struct {
	// Peers are the worker base URLs, indexed by shard
	// ("http://host:port", no trailing slash).
	Peers []string
	// Assignment is the routing table, planned from the same engine config the
	// workers were started with.
	Assignment *Assignment
	// Client is the HTTP client for all worker traffic; nil uses a client with
	// a 30s request timeout.
	Client *http.Client
	// RetryInterval paces transient-failure retries and crash-recovery polls
	// (default 200ms).
	RetryInterval time.Duration
	// ResyncTimeout bounds how long a forward waits for a crashed worker to
	// come back before giving up (default 60s).
	ResyncTimeout time.Duration
	// MaxPending bounds the total posts held across the per-shard replay
	// buffers (default 8192). When the bound is reached the router fires the
	// SetPendingFullHook callback (once per coordination round), asking the
	// deployment to run a coordination round that clears the buffers — without
	// it, a router that never checkpoints would buffer every forwarded post
	// for the lifetime of the process.
	MaxPending int
}

// Router is the fan-out half of a sharded deployment: an httpapi.Engine whose
// Offer forwards each post to the shard owning its author's component and
// whose reads merge the workers' answers back into one surface. Plugged into
// httpapi.NewFromEngine, a router process serves the byte-identical HTTP API
// of a single node — same id allocation, same disorder checks, same SSE and
// connector egress — while the decisions happen on the workers.
//
// # Merge ordering
//
// Offer is a turnstile: a post may only forward once every smaller id has
// completed (successfully or not), so deliveries leave the router in strictly
// increasing global id order and every user's merged stream is seq-monotone —
// exactly the order a single node produces. OfferBatch holds one turn for the
// whole batch and fans the per-shard sub-batches out concurrently, then
// reassembles the results in batch order, so cross-shard batches still
// parallelize under the turnstile.
//
// # Crash recovery
//
// The router keeps, per shard, every post forwarded since the last
// coordinated checkpoint (the pending replay buffer). When a forward fails
// ambiguously — connection refused, timeout, a worker restart — the router
// polls the worker back to health, verifies its topology digest, rolls it
// back to the last coordinated round (POST /v1/shard/restore), replays the
// pending suffix, and then retries the in-flight post. Decisions are
// deterministic, so the replayed suffix rebuilds the identical worker state
// and the retried post gets the identical answer a crash-free run would have
// produced.
type Router struct {
	peers      []string
	assign     *Assignment
	client     *http.Client
	retryIvl   time.Duration
	resyncTO   time.Duration
	maxPending int
	// pendingFull is the buffers-full callback (SetPendingFullHook), invoked
	// on its own goroutine when the replay buffers reach maxPending. Set once
	// before serving traffic, read-only afterwards.
	pendingFull func()

	// mu guards: lastDone, ckptW, closed, pending, base, forwarded, pendingFullFired
	mu   sync.Mutex
	cond *sync.Cond
	// lastDone is the largest post id whose forward has completed (the
	// turnstile's gate); equal to the server's id watermark when quiescent.
	lastDone uint64
	// ckptW is the watermark of the newest coordinated checkpoint round.
	ckptW  uint64
	closed bool
	// pending[s] holds the posts forwarded to shard s since the last
	// coordination round, in id order — the crash-replay buffer.
	pending [][]IngestRequest
	// base[s] is shard s's own id watermark at the last coordination round;
	// base[s] (or the last pending id) is the watermark a healthy worker must
	// report.
	base []uint64
	// forwarded[s] is the highest id ever forwarded to shard s (topology
	// reporting only).
	forwarded []uint64
	// pendingFullFired records that the buffers-full callback already ran for
	// the current coordination round; coordinate() re-arms it.
	pendingFullFired bool
}

// NewRouter validates the options and builds the router. Call AwaitPeers
// before serving traffic.
func NewRouter(opts RouterOptions) (*Router, error) {
	if opts.Assignment == nil {
		return nil, fmt.Errorf("shard: RouterOptions.Assignment is required")
	}
	if len(opts.Peers) == 0 {
		return nil, fmt.Errorf("shard: RouterOptions.Peers is required")
	}
	if len(opts.Peers) != opts.Assignment.NumShards() {
		return nil, fmt.Errorf("shard: %d peers for %d shards; the router needs exactly one worker URL per shard",
			len(opts.Peers), opts.Assignment.NumShards())
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	retry := opts.RetryInterval
	if retry <= 0 {
		retry = 200 * time.Millisecond
	}
	resync := opts.ResyncTimeout
	if resync <= 0 {
		resync = 60 * time.Second
	}
	maxPending := opts.MaxPending
	if maxPending <= 0 {
		maxPending = 8192
	}
	rt := &Router{
		peers:      append([]string(nil), opts.Peers...),
		assign:     opts.Assignment,
		client:     client,
		retryIvl:   retry,
		resyncTO:   resync,
		maxPending: maxPending,
		pending:    make([][]IngestRequest, len(opts.Peers)),
		base:       make([]uint64, len(opts.Peers)),
		forwarded:  make([]uint64, len(opts.Peers)),
	}
	rt.cond = sync.NewCond(&rt.mu)
	return rt, nil
}

// SetPendingFullHook installs the callback fired (on its own goroutine, once
// per coordination round) when the replay buffers reach MaxPending posts. The
// daemon points it at the checkpoint manager, so a full buffer triggers the
// same coordination round a periodic checkpoint runs — clearing the buffers.
// Call before serving traffic.
func (rt *Router) SetPendingFullHook(fn func()) { rt.pendingFull = fn }

// Name implements httpapi.Engine.
func (rt *Router) Name() string {
	return fmt.Sprintf("router(%d shards, digest %016x)", len(rt.peers), rt.assign.Digest())
}

// Close unblocks waiting turns; subsequent Offers fail with stream.ErrClosed.
func (rt *Router) Close() {
	rt.mu.Lock()
	rt.closed = true
	rt.cond.Broadcast()
	rt.mu.Unlock()
}

// acquireTurn blocks until every id below id has completed. The comparison is
// "wait while id > lastDone+1" rather than an exact match: a terminally
// failed forward still advances lastDone past its id (the HTTP layer rolls
// the allocation back and may hand the same id out again), so both a burned
// id and a reused one pass the gate instead of deadlocking it.
func (rt *Router) acquireTurn(id uint64) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for !rt.closed && id > rt.lastDone+1 {
		rt.cond.Wait()
	}
	if rt.closed {
		return stream.ErrClosed
	}
	return nil
}

// completeTurn releases the turnstile after a forward completed (either way).
func (rt *Router) completeTurn(id uint64) {
	rt.mu.Lock()
	if id > rt.lastDone {
		rt.lastDone = id
	}
	rt.cond.Broadcast()
	rt.mu.Unlock()
}

// Offer implements httpapi.Engine: route the post to its author's shard,
// forward it (with crash recovery), and record it in the replay buffer.
func (rt *Router) Offer(p *core.Post) ([]int32, error) {
	if err := rt.acquireTurn(p.ID); err != nil {
		return nil, err
	}
	defer rt.completeTurn(p.ID)
	shard := rt.assign.ShardOf(p.Author)
	// Prev pins the worker watermark this forward must land on; it stays valid
	// across resyncs (recovery restores the worker to exactly this watermark)
	// because pending[shard] only grows after this forward succeeds.
	req := IngestRequest{ID: p.ID, Author: p.Author, TimeMillis: p.Time, Text: p.Text, Prev: rt.expected(shard)}
	users, err := rt.forwardOne(shard, req)
	if err != nil {
		return nil, err
	}
	rt.recordForwarded(shard, req)
	return users, nil
}

// OfferBatch implements httpapi.Engine: one turn for the whole batch,
// per-shard sub-batches forwarded concurrently, results reassembled in batch
// order.
func (rt *Router) OfferBatch(posts []*core.Post) ([][]int32, error) {
	if len(posts) == 0 {
		return nil, nil
	}
	if err := rt.acquireTurn(posts[0].ID); err != nil {
		return nil, err
	}
	defer rt.completeTurn(posts[len(posts)-1].ID)

	// Partition into per-shard sub-batches, remembering each post's batch
	// position so the per-shard results reassemble in order.
	sub := make(map[int][]IngestRequest)
	subIdx := make(map[int][]int)
	for i, p := range posts {
		s := rt.assign.ShardOf(p.Author)
		prev := rt.expected(s)
		if reqs := sub[s]; len(reqs) > 0 {
			prev = reqs[len(reqs)-1].ID
		}
		sub[s] = append(sub[s], IngestRequest{ID: p.ID, Author: p.Author, TimeMillis: p.Time, Text: p.Text, Prev: prev})
		subIdx[s] = append(subIdx[s], i)
	}

	results := make([][]int32, len(posts))
	var wg sync.WaitGroup
	errs := make(map[int]error)
	var errMu sync.Mutex
	for s, reqs := range sub {
		wg.Add(1)
		go func(s int, reqs []IngestRequest) {
			defer wg.Done()
			users, err := rt.forwardBatch(s, reqs)
			if err != nil {
				errMu.Lock()
				errs[s] = err
				errMu.Unlock()
				return
			}
			for i, u := range users {
				results[subIdx[s][i]] = u
			}
		}(s, reqs)
	}
	wg.Wait()
	if len(errs) > 0 {
		// Deterministic pick: lowest failing shard. The engine contract treats
		// a batch as one unit: the HTTP layer rolls the ids back, and nothing
		// lands in pending. A shard that did ingest its sub-batch now holds
		// state the router never recorded — its next forward fails the Prev
		// check (shard_desync) and resyncs, and coordinate() verifies and
		// resyncs every shard before a checkpoint, so the phantom sub-batch is
		// rolled back and replayed before anything is made durable.
		var worst int = -1
		for s := range errs {
			if worst == -1 || s < worst {
				worst = s
			}
		}
		return nil, fmt.Errorf("shard %d: %w", worst, errs[worst])
	}
	for s, reqs := range sub {
		for _, r := range reqs {
			rt.recordForwarded(s, r)
		}
	}
	return results, nil
}

// recordForwarded appends a successfully forwarded post to the shard's replay
// buffer and fires the buffers-full callback when the total pending count
// reaches MaxPending — the bound that keeps an infrequently-checkpointing
// router from buffering the whole stream.
func (rt *Router) recordForwarded(shard int, req IngestRequest) {
	rt.mu.Lock()
	rt.pending[shard] = append(rt.pending[shard], req)
	if req.ID > rt.forwarded[shard] {
		rt.forwarded[shard] = req.ID
	}
	total := 0
	for s := range rt.pending {
		total += len(rt.pending[s])
	}
	fire := total >= rt.maxPending && rt.pendingFull != nil && !rt.pendingFullFired
	if fire {
		rt.pendingFullFired = true
	}
	rt.mu.Unlock()
	if fire {
		// Own goroutine: the hook checkpoints, which takes the exclusive
		// ingest lock, and this forward still holds it shared.
		go rt.pendingFull()
	}
}

// expected returns the id watermark a healthy worker for shard s must report:
// its watermark at the last coordination round, advanced by every pending
// forward since.
func (rt *Router) expected(s int) uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	exp := rt.base[s]
	if n := len(rt.pending[s]); n > 0 {
		exp = rt.pending[s][n-1].ID
	}
	return exp
}

// fwdClass classifies one forward attempt's outcome.
type fwdClass int

const (
	fwdOK       fwdClass = iota
	fwdRetry             // transient with intact worker state (queue_full): plain retry
	fwdResync            // ambiguous or crashed: recover the worker, then retry
	fwdTerminal          // deterministic refusal: give up
)

// forwardOne forwards a single post with bounded recovery.
func (rt *Router) forwardOne(shard int, req IngestRequest) ([]int32, error) {
	deadline := time.Now().Add(rt.resyncTO)
	for {
		var resp IngestResponse
		class, err := rt.postShard(shard, "/v1/shard/ingest", req, &resp)
		switch class {
		case fwdOK:
			return resp.Users, nil
		case fwdTerminal:
			return nil, err
		case fwdRetry:
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("shard: giving up on shard %d after %v: %w", shard, rt.resyncTO, err)
			}
			time.Sleep(rt.retryIvl)
		case fwdResync:
			if rerr := rt.resync(shard, deadline); rerr != nil {
				return nil, fmt.Errorf("shard: forward to shard %d failed (%v) and recovery failed: %w", shard, err, rerr)
			}
		}
	}
}

// forwardBatch forwards one per-shard sub-batch. Any non-terminal failure
// goes through resync — a partially ingested batch is rolled back to the last
// coordination round and replayed, so the clean retry path always starts from
// a consistent worker.
func (rt *Router) forwardBatch(shard int, reqs []IngestRequest) ([][]int32, error) {
	deadline := time.Now().Add(rt.resyncTO)
	for {
		var resp IngestBatchResponse
		class, err := rt.postShard(shard, "/v1/shard/ingest/batch", IngestBatchRequest{Posts: reqs, Prev: reqs[0].Prev}, &resp)
		switch class {
		case fwdOK:
			if len(resp.Results) != len(reqs) {
				return nil, fmt.Errorf("shard: shard %d answered %d results for a %d-post batch", shard, len(resp.Results), len(reqs))
			}
			users := make([][]int32, len(reqs))
			for i, r := range resp.Results {
				users[i] = r.Users
			}
			return users, nil
		case fwdTerminal:
			return nil, err
		default: // fwdRetry, fwdResync: a mid-batch queue_full leaves a prefix
			// ingested, so both classes recover through the rollback path.
			if rerr := rt.resync(shard, deadline); rerr != nil {
				return nil, fmt.Errorf("shard: batch forward to shard %d failed (%v) and recovery failed: %w", shard, err, rerr)
			}
		}
	}
}

// resync brings one shard back to the router's view of its state: poll it
// healthy, verify its topology digest, roll it back to the last coordinated
// round, and replay the pending suffix. Safe to call on a healthy worker (it
// detects the intact state and skips the rollback).
func (rt *Router) resync(shard int, deadline time.Time) error {
	// 1. Poll the worker back to reachability and verify its identity.
	var topo httpapi.TopologyResponse
	for {
		if err := rt.getJSON(rt.peers[shard]+"/v1/admin/topology", &topo); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shard %d (%s) unreachable", shard, rt.peers[shard])
		}
		time.Sleep(rt.retryIvl)
	}
	want := fmt.Sprintf("%016x", rt.assign.Digest())
	if topo.Digest != want || topo.Shard != shard || topo.Shards != len(rt.peers) {
		return fmt.Errorf("%s: peer %s reports shard %d/%d digest %s, want shard %d/%d digest %s",
			httpapi.CodeShardMismatch, rt.peers[shard], topo.Shard, topo.Shards, topo.Digest, shard, len(rt.peers), want)
	}

	// 2. Intact state (e.g. a queue_full rollback, a blip that lost only the
	// response of a post the worker never saw): nothing to replay.
	if topo.Watermark == rt.expected(shard) {
		return nil
	}

	// 3. Roll back to the last coordination round...
	rt.mu.Lock()
	w := rt.ckptW
	replay := append([]IngestRequest(nil), rt.pending[shard]...)
	rt.mu.Unlock()
	var res RestoreResponse
	class, err := rt.postShard(shard, "/v1/shard/restore", RestoreRequest{Watermark: w}, &res)
	if class != fwdOK {
		return fmt.Errorf("rolling shard %d back to coordinated watermark %d: %w", shard, w, err)
	}
	if res.Restored && res.Watermark != w {
		return fmt.Errorf("%s: shard %d restored tag %d, want %d", httpapi.CodeShardMismatch, shard, res.Watermark, w)
	}

	// 4. ...and replay the pending suffix. Decisions are deterministic, so the
	// answers are the ones already returned to clients; only the worker state
	// matters here.
	prev := res.ShardSeq
	for _, req := range replay {
		if req.ID <= res.ShardSeq {
			continue // already inside the restored state
		}
		req.Prev = prev // re-chain from the restored watermark
		prev = req.ID
		for {
			var ir IngestResponse
			class, err := rt.postShard(shard, "/v1/shard/ingest", req, &ir)
			if class == fwdOK {
				break
			}
			if class == fwdTerminal {
				return fmt.Errorf("replaying post %d to shard %d: %w", req.ID, shard, err)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("replaying post %d to shard %d: %w", req.ID, shard, err)
			}
			time.Sleep(rt.retryIvl)
		}
	}
	return nil
}

// TimelineErr fetches the user's timeline from every shard and merges by
// ascending id. Each shard holds exactly the user's posts whose authors it
// owns, so the merge is a disjoint union. A failed shard fetch is retried
// within the resync window, like forwards; a shard that stays unreachable
// past it is an error — a silently partial merge would diverge from the
// single-node read. The HTTP layer serves the error as 503 shard_unavailable.
func (rt *Router) TimelineErr(user int32) ([]*core.Post, error) {
	type tlResp struct {
		Posts []struct {
			ID         uint64 `json:"id"`
			Author     int32  `json:"author"`
			TimeMillis int64  `json:"timeMillis"`
			Text       string `json:"text"`
		} `json:"posts"`
	}
	deadline := time.Now().Add(rt.resyncTO)
	var mu sync.Mutex
	var all []*core.Post
	errShard := -1
	var wg sync.WaitGroup
	for s, peer := range rt.peers {
		wg.Add(1)
		go func(s int, peer string) {
			defer wg.Done()
			var resp tlResp
			for {
				if err := rt.getJSON(fmt.Sprintf("%s/v1/timeline?user=%d&n=%d", peer, user, 1<<30), &resp); err == nil {
					break
				}
				if time.Now().After(deadline) {
					mu.Lock()
					if errShard == -1 || s < errShard {
						errShard = s
					}
					mu.Unlock()
					return
				}
				time.Sleep(rt.retryIvl)
			}
			mu.Lock()
			for _, p := range resp.Posts {
				all = append(all, core.NewPost(p.ID, p.Author, p.TimeMillis, p.Text))
			}
			mu.Unlock()
		}(s, peer)
	}
	wg.Wait()
	if errShard != -1 {
		return nil, fmt.Errorf("shard %d (%s) answered no timeline within %v; the merged timeline would be missing its posts",
			errShard, rt.peers[errShard], rt.resyncTO)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all, nil
}

// Timeline implements httpapi.Engine. The HTTP layer prefers TimelineErr
// (failures become 503 shard_unavailable); this error-less form answers nil
// while any shard is unreachable.
func (rt *Router) Timeline(user int32) []*core.Post {
	tl, err := rt.TimelineErr(user)
	if err != nil {
		return nil
	}
	return tl
}

// Counters implements httpapi.Engine: the sum of the workers' counters.
// Comparisons, insertions, evictions and the accept/reject tallies are exact
// (each decision happens on exactly one shard). StoredPeak is an upper bound,
// not the single-node metric: it sums per-shard peaks that were reached at
// independent moments, so it can exceed the deployment-wide peak a single
// node would have recorded.
func (rt *Router) Counters() metrics.Counters {
	var sum metrics.Counters
	for _, peer := range rt.peers {
		var resp httpapi.StatsResponse
		if err := rt.getJSON(peer+"/v1/stats", &resp); err != nil {
			continue
		}
		sum.Comparisons += resp.Comparisons
		sum.Insertions += resp.Insertions
		sum.Evictions += resp.Evictions
		sum.Accepted += resp.Accepted
		sum.Rejected += resp.Rejected
		sum.StoredPeak += resp.PeakCopies
	}
	return sum
}

// SnapshotState implements core.StateSnapshotter: the coordinated checkpoint
// round. The HTTP layer calls it under the exclusive ingest lock, so no
// forward is in flight and lastDone is the exact global watermark. Order
// matters for the durability invariant: every worker durably writes its
// tagged checkpoint first, the router's own meta section is encoded second,
// and the caller's ack (the connector cursor) only advances after the whole
// file is on disk — so a router checkpoint at watermark w proves every shard
// holds shard-<w>.fhc.
func (rt *Router) SnapshotState(enc *checkpoint.Encoder) error {
	w, seqs, err := rt.coordinate()
	if err != nil {
		return err
	}
	enc.String("router")
	enc.Uvarint(uint64(len(rt.peers)))
	enc.U64(rt.assign.Digest())
	enc.Uvarint(w)
	for _, q := range seqs {
		enc.Uvarint(q)
	}
	return nil
}

// coordinate runs one coordination round: every worker durably writes its
// tagged checkpoint at the router's current watermark, and the router adopts
// the round (ckptW advances, the replay buffers clear, the per-shard bases
// move to the workers' reported watermarks).
//
// Before a worker's checkpoint is requested, its watermark is verified
// against the router's replay buffer (and healed through resync on any
// disagreement). A worker can hold state the router never recorded — a
// partially failed OfferBatch ingests one shard's sub-batch, the HTTP layer
// rolls the ids back, and nothing lands in pending. Checkpointing that
// phantom state would bake it into the tagged checkpoint and the adopted
// base, terminally rejecting the re-allocated ids; resyncing first rolls the
// phantom sub-batch back and replays the recorded suffix, so only state the
// router accounted for is ever made durable.
func (rt *Router) coordinate() (uint64, []uint64, error) {
	rt.mu.Lock()
	w := rt.lastDone
	rt.mu.Unlock()
	// A coordination round is administrative — its callers (the periodic tick,
	// the admin endpoint, the buffers-full hook, the shutdown checkpoint)
	// retry or report, so an unreachable worker fails the round fast instead
	// of riding out the full resync window the way a forward must. A
	// shutdown-time round racing the workers' own exits would otherwise block
	// the process for the whole ResyncTimeout.
	deadline := time.Now().Add(2 * rt.retryIvl)
	seqs := make([]uint64, len(rt.peers))
	for s := range rt.peers {
		if err := rt.resync(s, deadline); err != nil {
			return 0, nil, fmt.Errorf("shard: coordinated checkpoint at watermark %d: resyncing shard %d: %w", w, s, err)
		}
		var resp CheckpointResponse
		class, err := rt.postShard(s, "/v1/shard/checkpoint", CheckpointRequest{Watermark: w}, &resp)
		if class != fwdOK {
			return 0, nil, fmt.Errorf("shard: coordinated checkpoint at watermark %d: shard %d: %w", w, s, err)
		}
		// The caller holds the exclusive ingest lock and the shard was just
		// resynced, so the checkpointed watermark must be exactly the one the
		// replay buffer predicts; adopting anything else would desynchronize
		// the rollback contract durably.
		if exp := rt.expected(s); resp.ShardSeq != exp {
			return 0, nil, fmt.Errorf(
				"shard: coordinated checkpoint at watermark %d: shard %d checkpointed its watermark %d, the router expected %d; refusing to adopt the round",
				w, s, resp.ShardSeq, exp)
		}
		seqs[s] = resp.ShardSeq
	}
	rt.mu.Lock()
	rt.ckptW = w
	for s := range rt.pending {
		rt.pending[s] = rt.pending[s][:0]
		rt.base[s] = seqs[s]
	}
	rt.pendingFullFired = false
	rt.mu.Unlock()
	return w, seqs, nil
}

// RestoreState implements core.StateSnapshotter: verify the checkpoint's
// topology, roll every worker back to the coordinated round it names, and
// adopt its watermark. Workers that are still booting are polled within the
// resync timeout.
func (rt *Router) RestoreState(dec *checkpoint.Decoder) error {
	dec.Expect("router")
	shards := int(dec.Uvarint())
	digest := dec.U64()
	w := dec.Uvarint()
	var seqs []uint64
	if shards > 0 && shards <= 1<<20 {
		seqs = make([]uint64, shards)
		for i := range seqs {
			seqs[i] = dec.Uvarint()
		}
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if shards != len(rt.peers) || digest != rt.assign.Digest() {
		return fmt.Errorf(
			"shard: %s: checkpoint was written by a router over %d shards (assignment digest %016x), this router runs %d shards (digest %016x); restore it with the matching worker count and graph configuration",
			httpapi.CodeShardMismatch, shards, digest, len(rt.peers), rt.assign.Digest())
	}
	deadline := time.Now().Add(rt.resyncTO)
	for s := range rt.peers {
		for {
			var res RestoreResponse
			class, err := rt.postShard(s, "/v1/shard/restore", RestoreRequest{Watermark: w}, &res)
			if class == fwdOK {
				if res.Restored && res.Watermark != w {
					return fmt.Errorf("shard: %s: shard %d restored tag %d, want %d", httpapi.CodeShardMismatch, s, res.Watermark, w)
				}
				if res.ShardSeq != seqs[s] {
					return fmt.Errorf(
						"shard: %s: shard %d reports watermark %d inside coordinated round %d, the router checkpoint recorded %d; the worker's checkpoint directory does not match this router's",
						httpapi.CodeShardMismatch, s, res.ShardSeq, w, seqs[s])
				}
				break
			}
			if class == fwdTerminal {
				return fmt.Errorf("shard: restoring shard %d to coordinated watermark %d: %w", s, w, err)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("shard: restoring shard %d to coordinated watermark %d: %w", s, w, err)
			}
			time.Sleep(rt.retryIvl)
		}
	}
	rt.mu.Lock()
	rt.lastDone = w
	rt.ckptW = w
	for s := range rt.pending {
		rt.pending[s] = rt.pending[s][:0]
		rt.base[s] = seqs[s]
		rt.forwarded[s] = seqs[s]
	}
	rt.pendingFullFired = false
	rt.mu.Unlock()
	return nil
}

// InitialCoordination runs a coordination round at the router's current
// watermark. A cold router calls it once on boot so every worker holds a
// tagged rollback target (shard-0.fhc) from the very first post — without
// one, a crash before the first periodic checkpoint would have nowhere to
// roll back to. Workers without a checkpoint directory make it a no-op
// (recovery then relies on the fresh-restart path alone).
func (rt *Router) InitialCoordination() error {
	_, _, err := rt.coordinate()
	if err != nil {
		var envErr *envelopeError
		if errors.As(err, &envErr) && envErr.code == httpapi.CodeCheckpointsDisabled {
			return nil // uncoordinated deployment; nothing to pre-seed
		}
		return err
	}
	return nil
}

// AwaitPeers blocks until every worker answers its topology endpoint with the
// matching digest, shard index and shard count, or ctx expires — the boot
// barrier a router runs before restoring or serving.
func (rt *Router) AwaitPeers(ctx context.Context) error {
	want := fmt.Sprintf("%016x", rt.assign.Digest())
	for s, peer := range rt.peers {
		for {
			var topo httpapi.TopologyResponse
			err := rt.getJSON(peer+"/v1/admin/topology", &topo)
			if err == nil {
				if topo.Digest != want || topo.Shard != s || topo.Shards != len(rt.peers) {
					return fmt.Errorf(
						"shard: %s: peer %s reports shard %d/%d with assignment digest %s, this router planned shard %d/%d with digest %s; all processes must share the graph, thresholds and shard count",
						httpapi.CodeShardMismatch, peer, topo.Shard, topo.Shards, topo.Digest, s, len(rt.peers), want)
				}
				break
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("shard: waiting for shard %d (%s): %w", s, peer, ctx.Err())
			case <-time.After(rt.retryIvl):
			}
		}
	}
	return nil
}

// Topology is the router's GET /v1/admin/topology answer; install it with
// Server.SetTopologyProvider.
func (rt *Router) Topology() httpapi.TopologyResponse {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	resp := httpapi.TopologyResponse{
		Mode:                 "router",
		Shard:                -1,
		Shards:               len(rt.peers),
		Digest:               fmt.Sprintf("%016x", rt.assign.Digest()),
		Watermark:            rt.lastDone,
		CoordinatedWatermark: rt.ckptW,
	}
	for s, peer := range rt.peers {
		resp.PerShard = append(resp.PerShard, httpapi.ShardStatus{
			Shard:     s,
			Peer:      peer,
			Watermark: rt.forwarded[s],
			Pending:   len(rt.pending[s]),
		})
	}
	return resp
}

// envelopeError is a worker's JSON error envelope as a Go error, keeping the
// machine code available to the retry classifier and the caller.
type envelopeError struct {
	status int
	code   string
	msg    string
}

func (e *envelopeError) Error() string {
	return fmt.Sprintf("worker answered %d %s: %s", e.status, e.code, e.msg)
}

// postShard POSTs one protocol message to a shard and classifies the outcome.
// out is decoded only on 200.
func (rt *Router) postShard(shard int, path string, body, out any) (fwdClass, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return fwdTerminal, err
	}
	req, err := http.NewRequest(http.MethodPost, rt.peers[shard]+path, bytes.NewReader(buf))
	if err != nil {
		return fwdTerminal, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TopologyHeader, formatTopology(rt.assign.Digest(), shard, len(rt.peers)))
	resp, err := rt.client.Do(req)
	if err != nil {
		return fwdResync, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if err != nil {
		return fwdResync, err
	}
	if resp.StatusCode == http.StatusOK {
		if out == nil {
			return fwdOK, nil
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return fwdResync, fmt.Errorf("decoding shard %d response: %w", shard, err)
		}
		return fwdOK, nil
	}
	var env httpapi.ErrorResponse
	if err := json.Unmarshal(raw, &env); err != nil || env.Code == "" {
		return fwdResync, fmt.Errorf("shard %d answered %d with no envelope", shard, resp.StatusCode)
	}
	ee := &envelopeError{status: resp.StatusCode, code: env.Code, msg: env.Error}
	switch env.Code {
	case httpapi.CodeQueueFull:
		return fwdRetry, ee
	case httpapi.CodeEngineClosed, httpapi.CodeShardDesync:
		// shard_desync: the worker's watermark disagrees with the replay
		// buffer — typically a crash-and-restart the router has not noticed.
		// Rollback-and-replay heals it.
		return fwdResync, ee
	default:
		return fwdTerminal, ee
	}
}

// getJSON fetches one JSON document from a worker.
func (rt *Router) getJSON(url string, out any) error {
	resp, err := rt.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
