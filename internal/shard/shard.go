// Package shard implements horizontal, author-partitioned sharding of the
// multi-user diversification service (ROADMAP item 3).
//
// The partition exploits the same independence the parallel engine uses at
// goroutine scale (paper §5): two posts can only cover each other when their
// authors are similar, i.e. connected in the author-similarity graph G(λa) —
// so posts whose authors live in different connected components never
// interact, for any user. Assigning every component to exactly one shard and
// routing each post to its author's shard therefore yields bit-identical
// per-post decisions to a single node, as long as every shard runs the full
// engine configuration (whole graph, whole subscription map, same
// thresholds): a user subscribed across shards simply has each component of
// their subscription decided on the shard that owns it.
//
// The package provides three pieces:
//
//   - Plan/Coordinator: the deterministic component → shard assignment,
//     computed identically by every process from the shared engine config,
//     plus the clique cover and per-shard slices (the coordinator owns the
//     social graph, like the coordinator/worker split in Gao et al.).
//   - Worker (NewWorker): wraps an httpapi.Server with the shard-local
//     ingest/checkpoint/restore endpoints a router drives.
//   - Router (NewRouter): an httpapi.Engine that fans ingest out to the
//     workers over the connector-style transport and merges deliveries back
//     in global id order.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"

	"firehose/internal/authorsim"
)

// Topology identifies one node's place in a sharded deployment: which shard
// it is, how many shards exist, and the digest of the assignment every
// participant must agree on. A router uses Shard = -1.
type Topology struct {
	// Shard is this node's shard index in [0, Shards), or -1 for the router.
	Shard int
	// Shards is the total shard count.
	Shards int
	// Digest fingerprints the component → shard assignment (and the graph it
	// was derived from); see Assignment.Digest.
	Digest uint64
}

// Assignment is the author-partitioned routing table: every connected
// component of the author-similarity graph is owned by exactly one shard,
// and a post routes to the shard owning its author's component. Assignments
// are deterministic — every process that computes one over the same graph
// and shard count gets byte-identical routing and the same digest.
type Assignment struct {
	shards    int
	owner     []int32   // author → owning shard
	comps     [][]int32 // canonical components (authorsim.InducedComponents order)
	compShard []int32   // component index → owning shard
	digest    uint64
}

// Plan computes the assignment of g's components onto shards. Components are
// placed largest-first onto the least-loaded shard (by author count, ties to
// the lowest shard index), which is deterministic because InducedComponents
// returns a canonical ordering. Reusing that canonical component machinery —
// the same dedup backbone the S_* algorithms use — means the routing unit is
// exactly the decision-independence unit.
func Plan(g *authorsim.Graph, shards int) (*Assignment, error) {
	if g == nil {
		return nil, fmt.Errorf("shard: nil author graph")
	}
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count must be at least 1, got %d", shards)
	}
	n := g.NumAuthors()
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	comps := g.InducedComponents(all)

	// Largest components first; SliceStable keeps the canonical
	// smallest-member order among equal sizes.
	order := make([]int, len(comps))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return len(comps[order[i]]) > len(comps[order[j]])
	})

	a := &Assignment{
		shards:    shards,
		owner:     make([]int32, n),
		comps:     comps,
		compShard: make([]int32, len(comps)),
	}
	load := make([]int, shards)
	for _, ci := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		a.compShard[ci] = int32(best)
		load[best] += len(comps[ci])
		for _, author := range comps[ci] {
			a.owner[author] = int32(best)
		}
	}

	h := fnv.New64a()
	w64 := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(b[:]) // hash.Hash.Write never fails
	}
	w64(uint64(shards))
	w64(uint64(n))
	w64(uint64(g.NumEdges()))
	w64(uint64(int64(g.LambdaA() * 1e9)))
	for _, s := range a.owner {
		w64(uint64(s))
	}
	a.digest = h.Sum64()
	return a, nil
}

// NumShards returns the shard count the assignment was planned for.
func (a *Assignment) NumShards() int { return a.shards }

// NumAuthors returns the size of the author universe.
func (a *Assignment) NumAuthors() int { return len(a.owner) }

// ShardOf returns the shard owning the author's component. Authors outside
// the planned universe route to shard 0 and are rejected by the worker's
// engine, exactly as a single node rejects them.
func (a *Assignment) ShardOf(author int32) int {
	if author < 0 || int(author) >= len(a.owner) {
		return 0
	}
	return int(a.owner[author])
}

// Digest fingerprints the assignment: FNV-1a over the shard count, the graph
// shape (author count, edge count, λa) and the full author → shard vector.
// Router and workers each compute it from their own config; a mismatch means
// the processes were started over different graphs or shard counts, and
// every cross-process message carries it so the disagreement is refused at
// the first request, not discovered as silently divergent decisions.
func (a *Assignment) Digest() uint64 { return a.digest }

// Components returns the canonical components of the planned graph. The
// slice is shared; callers must not mutate it.
func (a *Assignment) Components() [][]int32 { return a.comps }

// ShardOfComponent returns the shard owning component ci.
func (a *Assignment) ShardOfComponent(ci int) int { return int(a.compShard[ci]) }

// Slice is the per-shard view of an assignment: the authors and components
// one shard owns, with the clique cover restricted to them when the
// coordinator carries one.
type Slice struct {
	// Shard is the slice's shard index.
	Shard int
	// Authors are the authors whose posts route to this shard, ascending.
	Authors []int32
	// Components are the owned components, in canonical order.
	Components [][]int32
	// Cliques is the clique cover restricted to the owned authors; nil when
	// the coordinator was built without a cover.
	Cliques [][]int32
}

// Coordinator owns the shared state a sharded deployment distributes: the
// author-similarity graph, its greedy clique cover, and the assignment. It
// serves per-shard slices; routers additionally use the assignment directly
// for per-post routing.
type Coordinator struct {
	graph  *authorsim.Graph
	cover  *authorsim.CliqueCover
	assign *Assignment
}

// NewCoordinator plans an assignment over g and computes the clique cover
// (the CliqueBin metadata workers would otherwise each recompute).
func NewCoordinator(g *authorsim.Graph, shards int) (*Coordinator, error) {
	a, err := Plan(g, shards)
	if err != nil {
		return nil, err
	}
	all := make([]int32, g.NumAuthors())
	for i := range all {
		all[i] = int32(i)
	}
	return &Coordinator{graph: g, cover: authorsim.GreedyCliqueCover(g, all), assign: a}, nil
}

// Assignment returns the coordinator's routing table.
func (c *Coordinator) Assignment() *Assignment { return c.assign }

// Cover returns the full clique cover.
func (c *Coordinator) Cover() *authorsim.CliqueCover { return c.cover }

// Slice returns shard s's view: owned authors, owned components, and the
// clique cover restricted to the owned authors. Cliques never straddle a
// slice boundary — a clique is mutually similar, hence inside one component.
func (c *Coordinator) Slice(s int) (Slice, error) {
	if s < 0 || s >= c.assign.shards {
		return Slice{}, fmt.Errorf("shard: slice index %d out of range [0,%d)", s, c.assign.shards)
	}
	sl := Slice{Shard: s}
	for ci, comp := range c.assign.comps {
		if int(c.assign.compShard[ci]) != s {
			continue
		}
		sl.Components = append(sl.Components, comp)
		sl.Authors = append(sl.Authors, comp...)
	}
	sort.Slice(sl.Authors, func(i, j int) bool { return sl.Authors[i] < sl.Authors[j] })
	for _, q := range c.cover.Cliques {
		if len(q) > 0 && c.assign.ShardOf(q[0]) == s {
			sl.Cliques = append(sl.Cliques, q)
		}
	}
	return sl, nil
}
