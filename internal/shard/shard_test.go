package shard

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"firehose/internal/authorsim"
	"firehose/internal/checkpoint"
	"firehose/internal/httpapi"
)

// testGraph builds a 12-author graph with six connected components of mixed
// sizes: {0,1,2}, {3,4}, {6,7}, {9,10,11} and the singletons {5}, {8}.
func testGraph() *authorsim.Graph {
	return authorsim.NewGraph(12, []authorsim.SimPair{
		{A: 0, B: 1}, {A: 1, B: 2},
		{A: 3, B: 4},
		{A: 6, B: 7},
		{A: 9, B: 10}, {A: 10, B: 11}, {A: 9, B: 11},
	}, 0.7)
}

func TestPlanPartitionInvariants(t *testing.T) {
	g := testGraph()
	for _, shards := range []int{1, 2, 3, 4} {
		a, err := Plan(g, shards)
		if err != nil {
			t.Fatalf("Plan(%d): %v", shards, err)
		}
		if a.NumShards() != shards || a.NumAuthors() != 12 {
			t.Fatalf("Plan(%d): shards %d authors %d", shards, a.NumShards(), a.NumAuthors())
		}
		// Every component lives wholly on one shard — the decision-independence
		// unit is the routing unit.
		for ci, comp := range a.Components() {
			owner := a.ShardOfComponent(ci)
			if owner < 0 || owner >= shards {
				t.Fatalf("Plan(%d): component %d on shard %d", shards, ci, owner)
			}
			for _, author := range comp {
				if a.ShardOf(author) != owner {
					t.Fatalf("Plan(%d): author %d routes to %d, its component %d lives on %d",
						shards, author, a.ShardOf(author), ci, owner)
				}
			}
		}
		// Planning twice over the same inputs is byte-identical routing.
		b, err := Plan(testGraph(), shards)
		if err != nil {
			t.Fatal(err)
		}
		if b.Digest() != a.Digest() {
			t.Fatalf("Plan(%d) digest not deterministic: %016x vs %016x", shards, a.Digest(), b.Digest())
		}
		for author := int32(0); author < 12; author++ {
			if a.ShardOf(author) != b.ShardOf(author) {
				t.Fatalf("Plan(%d): author %d routed to %d then %d", shards, author, a.ShardOf(author), b.ShardOf(author))
			}
		}
	}
}

func TestPlanDigestDiscriminates(t *testing.T) {
	g := testGraph()
	a2, _ := Plan(g, 2)
	a4, _ := Plan(g, 4)
	if a2.Digest() == a4.Digest() {
		t.Fatal("2-shard and 4-shard plans share a digest")
	}
	// A different edge set is a different digest even at the same shard count.
	other := authorsim.NewGraph(12, []authorsim.SimPair{{A: 0, B: 1}}, 0.7)
	b2, _ := Plan(other, 2)
	if b2.Digest() == a2.Digest() {
		t.Fatal("plans over different graphs share a digest")
	}
}

func TestShardOfOutOfRange(t *testing.T) {
	a, _ := Plan(testGraph(), 3)
	if got := a.ShardOf(-1); got != 0 {
		t.Fatalf("ShardOf(-1) = %d, want 0", got)
	}
	if got := a.ShardOf(99); got != 0 {
		t.Fatalf("ShardOf(99) = %d, want 0", got)
	}
}

func TestPlanRejectsBadInputs(t *testing.T) {
	if _, err := Plan(nil, 2); err == nil {
		t.Fatal("Plan(nil) succeeded")
	}
	if _, err := Plan(testGraph(), 0); err == nil {
		t.Fatal("Plan(shards=0) succeeded")
	}
}

func TestCoordinatorSlices(t *testing.T) {
	g := testGraph()
	c, err := NewCoordinator(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := c.Assignment()
	seen := make(map[int32]int)
	for s := 0; s < a.NumShards(); s++ {
		sl, err := c.Slice(s)
		if err != nil {
			t.Fatal(err)
		}
		if sl.Shard != s {
			t.Fatalf("Slice(%d).Shard = %d", s, sl.Shard)
		}
		for _, author := range sl.Authors {
			if prev, dup := seen[author]; dup {
				t.Fatalf("author %d owned by shards %d and %d", author, prev, s)
			}
			seen[author] = s
			if a.ShardOf(author) != s {
				t.Fatalf("slice %d holds author %d, assignment routes it to %d", s, author, a.ShardOf(author))
			}
		}
		// A clique is mutually similar, hence inside one component: it must
		// never straddle a slice boundary.
		for _, q := range sl.Cliques {
			for _, author := range q {
				if a.ShardOf(author) != s {
					t.Fatalf("slice %d clique %v includes author %d owned by shard %d", s, q, author, a.ShardOf(author))
				}
			}
		}
	}
	if len(seen) != 12 {
		t.Fatalf("slices cover %d of 12 authors", len(seen))
	}
	if _, err := c.Slice(3); err == nil {
		t.Fatal("Slice(3) on a 3-shard plan succeeded")
	}
}

func TestTopologyHeaderRoundTrip(t *testing.T) {
	v := formatTopology(0xdeadbeefcafef00d, 2, 4)
	if v != "deadbeefcafef00d/2/4" {
		t.Fatalf("formatTopology = %q", v)
	}
	digest, shard, shards, err := parseTopology(v)
	if err != nil || digest != 0xdeadbeefcafef00d || shard != 2 || shards != 4 {
		t.Fatalf("parseTopology(%q) = %x/%d/%d, %v", v, digest, shard, shards, err)
	}
	for _, bad := range []string{"", "abc", "zz/1/2", "1/2", "0001/x/2", "0001/1/x", "1/2/3/4"} {
		if _, _, _, err := parseTopology(bad); err == nil {
			t.Errorf("parseTopology(%q) succeeded", bad)
		}
	}
}

// TestRouterRestoreRefusesForeignCheckpoint: a router checkpoint names the
// shard count and assignment digest it was coordinated under; RestoreState
// on a differently planned router must refuse with shard_mismatch before it
// contacts a single worker. The peers here are unroutable on purpose — any
// attempt to talk to them would hang past the test deadline.
func TestRouterRestoreRefusesForeignCheckpoint(t *testing.T) {
	two, err := Plan(testGraph(), 2)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Plan(testGraph(), 4)
	if err != nil {
		t.Fatal(err)
	}

	// Hand-encode the state a 2-shard router would have snapshotted.
	var buf bytes.Buffer
	enc := checkpoint.NewEncoder(&buf, "test.Router")
	enc.String("router")
	enc.Uvarint(2)
	enc.U64(two.Digest())
	enc.Uvarint(10)
	enc.Uvarint(6)
	enc.Uvarint(4)
	if err := enc.Finish(); err != nil {
		t.Fatal(err)
	}

	rt, err := NewRouter(RouterOptions{
		Peers: []string{
			"http://192.0.2.1:1", "http://192.0.2.1:2",
			"http://192.0.2.1:3", "http://192.0.2.1:4",
		},
		Assignment:    four,
		RetryInterval: time.Millisecond,
		ResyncTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	dec, err := checkpoint.NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restoreErr := rt.RestoreState(dec)
	if restoreErr == nil || !strings.Contains(restoreErr.Error(), httpapi.CodeShardMismatch) {
		t.Fatalf("RestoreState = %v, want a shard_mismatch refusal", restoreErr)
	}
	if !strings.Contains(restoreErr.Error(), "2 shards") || !strings.Contains(restoreErr.Error(), "4 shards") {
		t.Fatalf("refusal %q should name both shard counts", restoreErr)
	}
}
