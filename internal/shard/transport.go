package shard

import (
	"context"
	"fmt"
	"sync"

	"firehose/internal/connector"
)

// IngestInput is the worker-facing half of the inter-shard transport: the
// router POSTs forwarded posts to /v1/shard/ingest, the worker's handler
// Submits them here, and the worker's ingest loop Reads them one at a time —
// a connector.Input like any other, which is what keeps the multi-process
// split on the PR-9 pipeline contract (and lets the connectortest
// conformance suite drive the transport directly).
//
// Unlike the plain HTTP push adapter, a forwarded post arrives with its
// global id already assigned by the router; Submit carries it in
// Message.Seq. The single reader loop serializes the shard's ingests, so
// per-shard id order is whatever order the router forwards in.
//
// Like the HTTP and TCP inputs, the synchronous Submit reply doubles as the
// ack, so Ack is a trivial success.
type IngestInput struct {
	msgs    chan *connector.Message
	closeCh chan struct{}

	// mu guards: connected, closed
	mu        sync.Mutex
	connected bool
	closed    bool
}

// NewIngestInput builds the transport input with the given submit buffer.
func NewIngestInput(buffer int) *IngestInput {
	if buffer < 0 {
		buffer = 0
	}
	return &IngestInput{
		msgs:    make(chan *connector.Message, buffer),
		closeCh: make(chan struct{}),
	}
}

// Connect marks the input ready. There is no external resource to open.
func (in *IngestInput) Connect(context.Context) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return connector.ErrClosed
	}
	in.connected = true
	return nil
}

// Submit enqueues one router-assigned post and blocks until the worker loop
// reports its outcome, ctx is cancelled, or the input closes. id is the
// post's global id (assigned by the router); it travels in Message.Seq.
func (in *IngestInput) Submit(ctx context.Context, id uint64, author int32, timeMillis int64, text string) (connector.SubmitResult, error) {
	res := make(chan connector.SubmitResult, 1)
	msg := connector.NewSubmitMessage(author, timeMillis, text, func(seq uint64, users []int32, err error) {
		res <- connector.SubmitResult{Seq: seq, Users: users, Err: err}
	})
	msg.Seq = id
	select {
	case in.msgs <- msg:
	case <-ctx.Done():
		return connector.SubmitResult{}, ctx.Err()
	case <-in.closeCh:
		return connector.SubmitResult{}, connector.ErrClosed
	}
	select {
	case r := <-res:
		return r, nil
	case <-ctx.Done():
		return connector.SubmitResult{}, ctx.Err()
	case <-in.closeCh:
		return connector.SubmitResult{}, connector.ErrClosed
	}
}

// Read blocks until a submitted message arrives, ctx is cancelled, or Close.
func (in *IngestInput) Read(ctx context.Context) (*connector.Message, error) {
	in.mu.Lock()
	connected := in.connected
	in.mu.Unlock()
	if !connected {
		return nil, fmt.Errorf("shard: transport input: Read before Connect")
	}
	select {
	case msg := <-in.msgs:
		return msg, nil
	default:
	}
	select {
	case msg := <-in.msgs:
		return msg, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-in.closeCh:
		return nil, connector.ErrClosed
	}
}

// Ack is a trivial success: the synchronous Submit reply already settled the
// exchange with the router, whose own durable cursor is the source of
// replays.
func (in *IngestInput) Ack(*connector.Message) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return connector.ErrClosed
	}
	return nil
}

// Close unblocks pending Submits and Reads. Idempotent.
func (in *IngestInput) Close() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return nil
	}
	in.closed = true
	close(in.closeCh)
	return nil
}
