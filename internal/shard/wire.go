package shard

import (
	"fmt"
	"strconv"
	"strings"
)

// The router↔worker wire protocol is four JSON endpoints mounted on each
// worker's existing HTTP server, so the inter-shard transport reuses the
// daemon's listener, error envelope and golden-tested codes instead of
// inventing a side channel:
//
//	POST /v1/shard/ingest        one forwarded post with its router-assigned id
//	POST /v1/shard/ingest/batch  a per-shard sub-batch, ingested in order
//	POST /v1/shard/checkpoint    write the coordinated tagged checkpoint
//	POST /v1/shard/restore       roll back to a coordination round
//
// Every request carries the Firehose-Topology header; a worker refuses a
// request from a router planned over a different graph, shard count or shard
// index with 409 shard_mismatch before any state changes.

// TopologyHeader carries the sender's view of the receiver's shard identity
// on every inter-shard request: "<16-hex assignment digest>/<shard>/<shards>".
const TopologyHeader = "Firehose-Topology"

// IngestedHeader reports, on a failed batch forward, how many leading posts
// of the batch were ingested before the failure, so the router resumes the
// batch instead of double-ingesting its prefix.
const IngestedHeader = "Firehose-Ingested"

// formatTopology renders the TopologyHeader value for a request addressed to
// the given shard.
func formatTopology(digest uint64, shard, shards int) string {
	return fmt.Sprintf("%016x/%d/%d", digest, shard, shards)
}

// parseTopology parses a TopologyHeader value.
func parseTopology(v string) (digest uint64, shard, shards int, err error) {
	parts := strings.Split(v, "/")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("shard: malformed %s header %q", TopologyHeader, v)
	}
	digest, err = strconv.ParseUint(parts[0], 16, 64)
	if err == nil {
		shard, err = strconv.Atoi(parts[1])
	}
	if err == nil {
		shards, err = strconv.Atoi(parts[2])
	}
	if err != nil {
		return 0, 0, 0, fmt.Errorf("shard: malformed %s header %q", TopologyHeader, v)
	}
	return digest, shard, shards, nil
}

// IngestRequest is the POST /v1/shard/ingest body: one post with the global
// id the router assigned it.
type IngestRequest struct {
	// ID is the router-assigned global post id; a worker's ids are a strictly
	// increasing (not dense) subsequence of the global space.
	ID uint64 `json:"id"`
	// Prev is the id watermark the worker must hold for this forward to land:
	// the id of the last post the router successfully forwarded to this shard
	// (its watermark at the last coordination round when nothing is pending).
	// A worker whose watermark disagrees refuses with 409 shard_desync — the
	// check that catches a worker that crashed and restarted cold between two
	// forwards, which is otherwise indistinguishable from a healthy one
	// (IngestAssigned accepts any id that advances its watermark, and per-shard
	// ids are sparse by design so a gap proves nothing).
	Prev uint64 `json:"prev"`
	// Author is the posting author's dense id; it must route to this shard.
	Author int32 `json:"author"`
	// TimeMillis is the post timestamp (Unix milliseconds).
	TimeMillis int64 `json:"timeMillis"`
	// Text is the post content.
	Text string `json:"text"`
}

// IngestResponse is the body of a successful forwarded ingest.
type IngestResponse struct {
	// ID echoes the post's global id.
	ID uint64 `json:"id"`
	// Users are the subscribers whose diversified timelines got the post
	// (empty, not null, when the engine rejected it for everyone).
	Users []int32 `json:"users"`
}

// IngestBatchRequest is the POST /v1/shard/ingest/batch body: the shard's
// sub-batch of one client batch, in global id order.
type IngestBatchRequest struct {
	Posts []IngestRequest `json:"posts"`
	// Prev is the watermark check for the whole sub-batch (see
	// IngestRequest.Prev); the posts' own Prev fields are ignored — within one
	// request the chain is implied by order.
	Prev uint64 `json:"prev"`
}

// IngestBatchResponse mirrors a successful sub-batch, result per post.
type IngestBatchResponse struct {
	Results []IngestResponse `json:"results"`
}

// CheckpointRequest is the POST /v1/shard/checkpoint body: the router's
// global id watermark naming the coordination round.
type CheckpointRequest struct {
	Watermark uint64 `json:"watermark"`
}

// CheckpointResponse confirms a durably written tagged checkpoint.
type CheckpointResponse struct {
	// Watermark echoes the round's tag.
	Watermark uint64 `json:"watermark"`
	// ShardSeq is the worker's own id watermark inside the written state —
	// the highest global id this shard had ingested.
	ShardSeq uint64 `json:"shardSeq"`
	// File is the tagged checkpoint's file name.
	File string `json:"file"`
}

// RestoreRequest is the POST /v1/shard/restore body: roll the worker back to
// the coordination round tagged with the router's checkpointed watermark.
type RestoreRequest struct {
	Watermark uint64 `json:"watermark"`
}

// RestoreResponse confirms a rollback.
type RestoreResponse struct {
	// Restored is false only for the watermark-0 case: the router is cold and
	// the worker confirmed it is fresh, so there was nothing to roll back.
	Restored bool `json:"restored"`
	// Watermark echoes the restored round's tag (0 when Restored is false).
	Watermark uint64 `json:"watermark"`
	// ShardSeq is the worker's id watermark after the rollback; the router
	// replays exactly the pending posts with larger ids.
	ShardSeq uint64 `json:"shardSeq"`
}
