package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"firehose/internal/checkpoint"
	"firehose/internal/connector"
	"firehose/internal/httpapi"
)

// WorkerOptions configures NewWorker. Server, Shard (with Assignment's shard
// count) and Assignment are required; CheckpointDir is required for a worker
// participating in coordinated checkpoints.
type WorkerOptions struct {
	// Server is the worker's HTTP server, already built over the full engine
	// configuration (whole graph, whole subscription map, same thresholds as
	// every other shard).
	Server *httpapi.Server
	// Shard is this worker's shard index in [0, Assignment.NumShards()).
	Shard int
	// Assignment is the deterministic routing table; the worker recomputes it
	// from the same config as the router and refuses requests that disagree.
	Assignment *Assignment
	// CheckpointDir, when non-empty, holds the worker's watermark-tagged
	// checkpoints. Empty disables coordinated durability (the checkpoint and
	// restore endpoints answer 503 checkpoints_disabled).
	CheckpointDir string
	// Retain bounds the tagged checkpoints kept on disk; <= 0 keeps all.
	Retain int
	// Buffer is the transport input's submit queue length (default 64).
	Buffer int
}

// Worker turns an httpapi.Server into one shard of a sharded deployment: it
// mounts the /v1/shard/* endpoints the router drives, disables direct HTTP
// push (the router owns the stream), stamps the server's checkpoint
// fingerprint with the shard topology, and runs the single ingest loop that
// serializes forwarded posts into the engine through the connector-style
// transport input.
type Worker struct {
	srv    *httpapi.Server
	shard  int
	assign *Assignment
	dir    string
	retain int
	input  *IngestInput

	// ckptMu serializes coordinated checkpoint/restore rounds so a slow
	// snapshot and a crash-recovery rollback cannot interleave.
	ckptMu sync.Mutex

	// mu guards: coordinated
	mu          sync.Mutex
	coordinated uint64

	done chan struct{}
}

// NewWorker wires the shard surface onto opts.Server and starts the ingest
// loop. The server must not be serving traffic yet.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Server == nil {
		return nil, fmt.Errorf("shard: WorkerOptions.Server is required")
	}
	if opts.Assignment == nil {
		return nil, fmt.Errorf("shard: WorkerOptions.Assignment is required")
	}
	if opts.Shard < 0 || opts.Shard >= opts.Assignment.NumShards() {
		return nil, fmt.Errorf("shard: worker shard index %d out of range [0,%d)", opts.Shard, opts.Assignment.NumShards())
	}
	buffer := opts.Buffer
	if buffer == 0 {
		buffer = 64
	}
	w := &Worker{
		srv:    opts.Server,
		shard:  opts.Shard,
		assign: opts.Assignment,
		dir:    opts.CheckpointDir,
		retain: opts.Retain,
		input:  NewIngestInput(buffer),
		done:   make(chan struct{}),
	}
	if err := w.input.Connect(context.Background()); err != nil {
		return nil, err
	}

	srv := opts.Server
	srv.SetTopology(w.shard, w.assign.NumShards(), w.assign.Digest())
	srv.DisableHTTPIngest()
	srv.SetTopologyProvider(w.topologyResponse)
	srv.Handle("POST /v1/shard/ingest", w.handleIngest)
	srv.Handle("POST /v1/shard/ingest/batch", w.handleIngestBatch)
	srv.Handle("POST /v1/shard/checkpoint", w.handleCheckpoint)
	srv.Handle("POST /v1/shard/restore", w.handleRestore)

	go w.ingestLoop()
	return w, nil
}

// ingestLoop is the shard's single writer: it drains the transport input and
// pushes each forwarded post through IngestAssigned, serializing the shard's
// ingests exactly as the connector runner serializes a pipeline's.
func (w *Worker) ingestLoop() {
	defer close(w.done)
	for {
		msg, err := w.input.Read(context.Background())
		if err != nil {
			return // closed
		}
		users, err := w.srv.IngestAssigned(msg.Seq, msg.Author, msg.TimeMillis, msg.Text)
		msg.Complete(msg.Seq, users, err)
	}
}

// Close stops the ingest loop and fails pending forwards with ErrClosed.
func (w *Worker) Close() error {
	err := w.input.Close()
	<-w.done
	return err
}

// Input exposes the transport input (for the conformance suite).
func (w *Worker) Input() *IngestInput { return w.input }

func (w *Worker) topologyResponse() httpapi.TopologyResponse {
	w.mu.Lock()
	coordinated := w.coordinated
	w.mu.Unlock()
	return httpapi.TopologyResponse{
		Mode:                 "worker",
		Shard:                w.shard,
		Shards:               w.assign.NumShards(),
		Digest:               fmt.Sprintf("%016x", w.assign.Digest()),
		Watermark:            w.srv.IDWatermark(),
		CoordinatedWatermark: coordinated,
	}
}

// checkTopology refuses a request whose Firehose-Topology header names a
// different assignment digest, shard index or shard count — the first line of
// defense against a router and worker planned over different configs.
func (w *Worker) checkTopology(r *http.Request) error {
	v := r.Header.Get(TopologyHeader)
	if v == "" {
		return fmt.Errorf("request carries no %s header; only a firehosed router may call /v1/shard endpoints", TopologyHeader)
	}
	digest, shard, shards, err := parseTopology(v)
	if err != nil {
		return err
	}
	if digest != w.assign.Digest() || shard != w.shard || shards != w.assign.NumShards() {
		return fmt.Errorf(
			"request addressed shard %d/%d with assignment digest %016x, but this worker is shard %d/%d with digest %016x; router and workers must be started over the same graph, thresholds and shard count",
			shard, shards, digest, w.shard, w.assign.NumShards(), w.assign.Digest())
	}
	return nil
}

// checkPrev verifies the forward lands on the watermark the router expects
// this shard to hold. A disagreement means the worker lost state (crashed and
// restarted cold between two forwards) or holds state the router never
// recorded; either way the engine must not see the post — the router rolls
// the worker back to the last coordinated round and replays. The check and
// the subsequent submit are not atomic, but the router's turnstile serializes
// forwards per shard, so nothing interleaves between them.
func (w *Worker) checkPrev(prev uint64) error {
	if got := w.srv.IDWatermark(); got != prev {
		return fmt.Errorf(
			"this forward expects shard %d's id watermark to be %d but it is %d; the worker's state and the router's replay buffer are out of step (did the worker restart?)",
			w.shard, prev, got)
	}
	return nil
}

// submitOne routes one forwarded post through the transport input and maps
// ownership violations before the engine ever sees the post.
func (w *Worker) submitOne(ctx context.Context, req IngestRequest) (connector.SubmitResult, error) {
	if req.ID == 0 {
		return connector.SubmitResult{}, fmt.Errorf("forwarded post is missing its assigned id")
	}
	if owner := w.assign.ShardOf(req.Author); owner != w.shard {
		return connector.SubmitResult{}, fmt.Errorf(
			"author %d belongs to shard %d, not this worker (shard %d); the router's routing table disagrees with this worker's",
			req.Author, owner, w.shard)
	}
	return w.input.Submit(ctx, req.ID, req.Author, req.TimeMillis, req.Text)
}

func (w *Worker) handleIngest(rw http.ResponseWriter, r *http.Request) {
	if err := w.checkTopology(r); err != nil {
		httpapi.WriteError(rw, http.StatusConflict, httpapi.CodeShardMismatch, "%v", err)
		return
	}
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpapi.WriteError(rw, http.StatusBadRequest, httpapi.CodeBadJSON, "invalid JSON body: %v", err)
		return
	}
	if req.ID == 0 {
		httpapi.WriteError(rw, http.StatusBadRequest, httpapi.CodeBadParam, "forwarded post is missing its assigned id")
		return
	}
	if owner := w.assign.ShardOf(req.Author); owner != w.shard {
		httpapi.WriteError(rw, http.StatusConflict, httpapi.CodeShardMismatch,
			"author %d belongs to shard %d, not this worker (shard %d); the router's routing table disagrees with this worker's",
			req.Author, owner, w.shard)
		return
	}
	if err := w.checkPrev(req.Prev); err != nil {
		httpapi.WriteError(rw, http.StatusConflict, httpapi.CodeShardDesync, "%v", err)
		return
	}
	res, err := w.input.Submit(r.Context(), req.ID, req.Author, req.TimeMillis, req.Text)
	if err != nil {
		httpapi.WriteError(rw, http.StatusServiceUnavailable, httpapi.CodeEngineClosed, "%v", err)
		return
	}
	if res.Err != nil {
		httpapi.WriteIngestError(rw, res.Err)
		return
	}
	users := res.Users
	if users == nil {
		users = []int32{}
	}
	httpapi.WriteJSON(rw, IngestResponse{ID: res.Seq, Users: users})
}

func (w *Worker) handleIngestBatch(rw http.ResponseWriter, r *http.Request) {
	if err := w.checkTopology(r); err != nil {
		httpapi.WriteError(rw, http.StatusConflict, httpapi.CodeShardMismatch, "%v", err)
		return
	}
	var req IngestBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpapi.WriteError(rw, http.StatusBadRequest, httpapi.CodeBadJSON, "invalid JSON body: %v", err)
		return
	}
	if len(req.Posts) == 0 {
		httpapi.WriteError(rw, http.StatusBadRequest, httpapi.CodeEmptyBatch, "batch holds no posts")
		return
	}
	if err := w.checkPrev(req.Prev); err != nil {
		httpapi.WriteError(rw, http.StatusConflict, httpapi.CodeShardDesync, "%v", err)
		return
	}
	resp := IngestBatchResponse{Results: make([]IngestResponse, 0, len(req.Posts))}
	for i, p := range req.Posts {
		res, err := w.submitOne(r.Context(), p)
		if err != nil || res.Err != nil {
			// The leading i posts are already inside the engine and cannot be
			// rolled back; tell the router so it resumes the batch there.
			rw.Header().Set(IngestedHeader, strconv.Itoa(i))
			switch {
			case err == nil:
				httpapi.WriteIngestError(rw, res.Err)
			case strings.Contains(err.Error(), "shard"):
				httpapi.WriteError(rw, http.StatusConflict, httpapi.CodeShardMismatch, "post %d: %v", i, err)
			default:
				httpapi.WriteError(rw, http.StatusServiceUnavailable, httpapi.CodeEngineClosed, "post %d: %v", i, err)
			}
			return
		}
		users := res.Users
		if users == nil {
			users = []int32{}
		}
		resp.Results = append(resp.Results, IngestResponse{ID: res.Seq, Users: users})
	}
	httpapi.WriteJSON(rw, resp)
}

func (w *Worker) handleCheckpoint(rw http.ResponseWriter, r *http.Request) {
	if err := w.checkTopology(r); err != nil {
		httpapi.WriteError(rw, http.StatusConflict, httpapi.CodeShardMismatch, "%v", err)
		return
	}
	var req CheckpointRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpapi.WriteError(rw, http.StatusBadRequest, httpapi.CodeBadJSON, "invalid JSON body: %v", err)
		return
	}
	if w.dir == "" {
		httpapi.WriteError(rw, http.StatusServiceUnavailable, httpapi.CodeCheckpointsDisabled,
			"this worker runs without a checkpoint directory; coordinated checkpoints need one on every shard")
		return
	}
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()
	f, err := checkpoint.WriteTagged(w.dir, req.Watermark, w.srv.Snapshot)
	if err != nil {
		httpapi.WriteError(rw, http.StatusInternalServerError, httpapi.CodeCheckpointFailed, "%v", err)
		return
	}
	_, _ = checkpoint.PruneTagged(w.dir, w.retain) // best-effort; stale files are harmless
	w.mu.Lock()
	w.coordinated = req.Watermark
	w.mu.Unlock()
	httpapi.WriteJSON(rw, CheckpointResponse{
		Watermark: f.Seq,
		ShardSeq:  w.srv.SnapshotWatermark(),
		File:      filepath.Base(f.Path),
	})
}

func (w *Worker) handleRestore(rw http.ResponseWriter, r *http.Request) {
	if err := w.checkTopology(r); err != nil {
		httpapi.WriteError(rw, http.StatusConflict, httpapi.CodeShardMismatch, "%v", err)
		return
	}
	var req RestoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpapi.WriteError(rw, http.StatusBadRequest, httpapi.CodeBadJSON, "invalid JSON body: %v", err)
		return
	}
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()
	var f checkpoint.File
	var ok bool
	if w.dir != "" {
		var err error
		f, ok, err = checkpoint.LatestTaggedAtMost(w.dir, req.Watermark)
		if err != nil {
			httpapi.WriteError(rw, http.StatusInternalServerError, httpapi.CodeCheckpointFailed, "%v", err)
			return
		}
	}
	if req.Watermark == 0 && !(ok && f.Seq == 0) {
		// The router is cold (no coordinated round, not even the boot-time
		// tag-0 round): the worker must be fresh too, or the processes are
		// out of step.
		if got := w.srv.IDWatermark(); got != 0 {
			httpapi.WriteError(rw, http.StatusConflict, httpapi.CodeShardMismatch,
				"router requested a rollback to the cold state but this worker already ingested up to id %d; restart the worker fresh or point the router at its coordinated checkpoint", got)
			return
		}
		httpapi.WriteJSON(rw, RestoreResponse{Restored: false, Watermark: 0, ShardSeq: 0})
		return
	}
	if w.dir == "" {
		httpapi.WriteError(rw, http.StatusServiceUnavailable, httpapi.CodeCheckpointsDisabled,
			"this worker runs without a checkpoint directory; coordinated restore needs one on every shard")
		return
	}
	if !ok || f.Seq != req.Watermark {
		newest := "none"
		if ok {
			newest = strconv.FormatUint(f.Seq, 10)
		}
		httpapi.WriteError(rw, http.StatusConflict, httpapi.CodeShardMismatch,
			"no coordinated checkpoint tagged %d on shard %d (newest at or below it: %s); the router's checkpoint and this worker's disagree about the last coordination round",
			req.Watermark, w.shard, newest)
		return
	}
	file, err := os.Open(f.Path)
	if err != nil {
		httpapi.WriteError(rw, http.StatusInternalServerError, httpapi.CodeCheckpointFailed, "%v", err)
		return
	}
	defer file.Close()
	if err := w.srv.Restore(file); err != nil {
		status, code := http.StatusInternalServerError, httpapi.CodeCheckpointFailed
		if strings.Contains(err.Error(), httpapi.CodeShardMismatch) {
			status, code = http.StatusConflict, httpapi.CodeShardMismatch
		}
		httpapi.WriteError(rw, status, code, "%v", err)
		return
	}
	w.mu.Lock()
	w.coordinated = req.Watermark
	w.mu.Unlock()
	httpapi.WriteJSON(rw, RestoreResponse{
		Restored:  true,
		Watermark: f.Seq,
		ShardSeq:  w.srv.SnapshotWatermark(),
	})
}
