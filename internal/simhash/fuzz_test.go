package simhash_test

import (
	"testing"

	"firehose/internal/simhash"
	"firehose/internal/textnorm"
)

// FuzzDistance checks the Hamming-distance metric axioms on arbitrary
// fingerprint triples: symmetry, the 0..64 range, identity of indiscernibles
// and the triangle inequality.
func FuzzDistance(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(uint64(0), ^uint64(0), uint64(0x5555555555555555))
	f.Add(uint64(1), uint64(2), uint64(4))
	f.Add(uint64(0xdeadbeefcafebabe), uint64(0xbadc0ffee0ddf00d), ^uint64(0))
	f.Fuzz(func(t *testing.T, ra, rb, rc uint64) {
		a, b, c := simhash.Fingerprint(ra), simhash.Fingerprint(rb), simhash.Fingerprint(rc)
		dab := simhash.Distance(a, b)
		if dba := simhash.Distance(b, a); dab != dba {
			t.Fatalf("asymmetric: d(%x,%x)=%d but d(%x,%x)=%d", a, b, dab, b, a, dba)
		}
		if dab < 0 || dab > simhash.Size {
			t.Fatalf("d(%x,%x)=%d outside [0,%d]", a, b, dab, simhash.Size)
		}
		if (dab == 0) != (a == b) {
			t.Fatalf("d(%x,%x)=%d violates identity", a, b, dab)
		}
		if dac, dcb := simhash.Distance(a, c), simhash.Distance(c, b); dab > dac+dcb {
			t.Fatalf("triangle violated: d(a,b)=%d > d(a,c)+d(c,b)=%d+%d", dab, dac, dcb)
		}
		if !simhash.Near(a, b, dab) || (dab > 0 && simhash.Near(a, b, dab-1)) {
			t.Fatalf("Near inconsistent with Distance at d=%d", dab)
		}
	})
}

// FuzzFingerprintNormalizationStable checks that fingerprinting commutes with
// text normalization: hashing the tokens of a raw string and of its
// normalized form agree, and whitespace variants of the same text cannot
// change the fingerprint.
func FuzzFingerprintNormalizationStable(f *testing.F) {
	f.Add("Over 300 people missing after ferry sinks")
	f.Add("  Mixed   CASE  and\tpunctuation!!! ")
	f.Add("")
	f.Add("émoji ☕ 中文 Köln")
	f.Add("a b c d e f g")
	f.Fuzz(func(t *testing.T, s string) {
		toks := textnorm.NormalizedTokens(s)
		fp := simhash.Hash(toks)
		if again := simhash.Hash(textnorm.NormalizedTokens(textnorm.Normalize(s))); again != fp {
			t.Fatalf("fingerprint unstable under normalization: %x vs %x for %q", fp, again, s)
		}
		if ws := simhash.Hash(textnorm.NormalizedTokens("  " + s + "\t")); ws != fp {
			t.Fatalf("fingerprint sensitive to surrounding whitespace: %x vs %x for %q", fp, ws, s)
		}
		if d := simhash.Distance(fp, fp); d != 0 {
			t.Fatalf("self-distance %d", d)
		}
	})
}
