// Package simhash implements 64-bit SimHash fingerprinting (Charikar's
// similarity hash) and Hamming distance, as used by the paper to estimate
// content similarity between social posts.
//
// A fingerprint is computed from a weighted bag of tokens: every token is
// hashed to 64 bits, each bit position accumulates +weight when the bit is
// set and -weight when clear, and the fingerprint keeps one bit per position
// recording the sign of the accumulated value. Texts sharing many tokens
// produce fingerprints at small Hamming distance, while independent texts
// land near distance 32 (each bit agreeing with probability 1/2).
package simhash

import (
	"math/bits"
)

// Fingerprint is a 64-bit SimHash value.
type Fingerprint uint64

// Size is the number of bits in a Fingerprint.
const Size = 64

// Feature is a token (already hashed) together with its weight.
// Callers that need custom token weighting (e.g. boosting hashtags)
// construct Features directly; most callers use Hash or HashWeighted.
type Feature struct {
	Hash   uint64
	Weight int
}

// fnv-1a 64-bit constants.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashToken hashes a single token to 64 bits using FNV-1a. It is exported so
// that callers building Feature slices use the same hash as Hash/HashWeighted.
func HashToken(token string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(token); i++ {
		h ^= uint64(token[i])
		h *= fnvPrime64
	}
	return h
}

// Hash computes the SimHash fingerprint of a bag of tokens with unit weights.
func Hash(tokens []string) Fingerprint {
	var v [Size]int
	for _, t := range tokens {
		addFeature(&v, HashToken(t), 1)
	}
	return collapse(&v)
}

// HashWeighted computes the SimHash fingerprint of a weighted feature bag.
func HashWeighted(features []Feature) Fingerprint {
	var v [Size]int
	for _, f := range features {
		addFeature(&v, f.Hash, f.Weight)
	}
	return collapse(&v)
}

func addFeature(v *[Size]int, h uint64, w int) {
	for i := 0; i < Size; i++ {
		if h&(1<<uint(i)) != 0 {
			v[i] += w
		} else {
			v[i] -= w
		}
	}
}

func collapse(v *[Size]int) Fingerprint {
	var f Fingerprint
	for i := 0; i < Size; i++ {
		if v[i] > 0 {
			f |= 1 << uint(i)
		}
	}
	return f
}

// Distance returns the Hamming distance between two fingerprints: the number
// of bit positions at which they differ. It is a metric on Fingerprints
// (non-negative, zero iff equal, symmetric, triangle inequality).
func Distance(a, b Fingerprint) int {
	return bits.OnesCount64(uint64(a ^ b))
}

// Near reports whether the Hamming distance between a and b is at most d.
// It short-circuits via popcount, which is a single instruction on amd64, so
// it is not meaningfully cheaper than Distance; it exists for readability at
// call sites implementing the paper's coverage predicate (dist_c <= lambda_c).
func Near(a, b Fingerprint, d int) bool {
	return Distance(a, b) <= d
}
