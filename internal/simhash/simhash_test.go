package simhash

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	tokens := []string{"over", "300", "people", "missing", "after", "ferry", "sinks"}
	a := Hash(tokens)
	b := Hash(tokens)
	if a != b {
		t.Fatalf("Hash not deterministic: %x vs %x", a, b)
	}
}

func TestHashOrderInvariant(t *testing.T) {
	a := Hash([]string{"alpha", "beta", "gamma"})
	b := Hash([]string{"gamma", "alpha", "beta"})
	if a != b {
		t.Fatalf("Hash should be order-invariant (bag semantics): %x vs %x", a, b)
	}
}

func TestHashEmpty(t *testing.T) {
	if got := Hash(nil); got != 0 {
		t.Fatalf("Hash(nil) = %x, want 0", got)
	}
	if got := Hash([]string{}); got != 0 {
		t.Fatalf("Hash(empty) = %x, want 0", got)
	}
}

func TestHashWeightedMatchesRepeatedTokens(t *testing.T) {
	// A token with weight 3 must behave like three copies of the token.
	byRepeat := Hash([]string{"news", "news", "news", "ipo", "alibaba"})
	byWeight := HashWeighted([]Feature{
		{Hash: HashToken("news"), Weight: 3},
		{Hash: HashToken("ipo"), Weight: 1},
		{Hash: HashToken("alibaba"), Weight: 1},
	})
	if byRepeat != byWeight {
		t.Fatalf("weighted hash mismatch: %x vs %x", byRepeat, byWeight)
	}
}

func TestDistanceBasics(t *testing.T) {
	tests := []struct {
		name string
		a, b Fingerprint
		want int
	}{
		{"equal", 0xdeadbeef, 0xdeadbeef, 0},
		{"zero vs zero", 0, 0, 0},
		{"one bit", 0, 1, 1},
		{"all bits", 0, ^Fingerprint(0), 64},
		{"alternating", 0xAAAAAAAAAAAAAAAA, 0x5555555555555555, 64},
		{"half", 0x00000000FFFFFFFF, 0, 32},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Distance(tc.a, tc.b); got != tc.want {
				t.Fatalf("Distance(%x,%x) = %d, want %d", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestNear(t *testing.T) {
	a, b := Fingerprint(0), Fingerprint(0b111) // distance 3
	if !Near(a, b, 3) {
		t.Fatal("Near(d=3) should hold at distance 3")
	}
	if Near(a, b, 2) {
		t.Fatal("Near(d=2) should fail at distance 3")
	}
}

func TestDistanceMetricAxioms(t *testing.T) {
	identity := func(a uint64) bool { return Distance(Fingerprint(a), Fingerprint(a)) == 0 }
	symmetry := func(a, b uint64) bool {
		return Distance(Fingerprint(a), Fingerprint(b)) == Distance(Fingerprint(b), Fingerprint(a))
	}
	triangle := func(a, b, c uint64) bool {
		ab := Distance(Fingerprint(a), Fingerprint(b))
		bc := Distance(Fingerprint(b), Fingerprint(c))
		ac := Distance(Fingerprint(a), Fingerprint(c))
		return ac <= ab+bc
	}
	nonneg := func(a, b uint64) bool {
		d := Distance(Fingerprint(a), Fingerprint(b))
		return d >= 0 && d <= 64
	}
	for name, prop := range map[string]any{
		"identity": identity, "symmetry": symmetry, "triangle": triangle, "range": nonneg,
	} {
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("metric axiom %s violated: %v", name, err)
		}
	}
}

func TestSimilarTextsCloserThanIndependent(t *testing.T) {
	// The core behavioural promise: small edits produce small Hamming
	// distances, unrelated texts produce distances near 32.
	base := strings.Fields("over 300 people missing after south korean ferry sinks reuters story link")
	edited := append(append([]string{}, base...), "breaking") // one token added
	other := strings.Fields("alibaba growth accelerates us ipo filing expected next week technology market")

	dEdit := Distance(Hash(base), Hash(edited))
	dOther := Distance(Hash(base), Hash(other))
	if dEdit >= dOther {
		t.Fatalf("edited distance %d should be < independent distance %d", dEdit, dOther)
	}
	if dEdit > 16 {
		t.Fatalf("single-token edit distance %d unexpectedly large", dEdit)
	}
	if dOther < 16 {
		t.Fatalf("independent texts distance %d unexpectedly small", dOther)
	}
}

func TestIndependentTextDistanceDistribution(t *testing.T) {
	// Pairs of random token bags must have mean Hamming distance near 32
	// (each bit independent fair coin), reproducing the shape of Figure 2.
	rng := rand.New(rand.NewSource(42))
	const pairs = 2000
	sum := 0
	for i := 0; i < pairs; i++ {
		a := randomBag(rng, 8+rng.Intn(8))
		b := randomBag(rng, 8+rng.Intn(8))
		sum += Distance(Hash(a), Hash(b))
	}
	mean := float64(sum) / pairs
	if mean < 30 || mean > 34 {
		t.Fatalf("mean distance of independent texts = %.2f, want ~32", mean)
	}
}

func randomBag(rng *rand.Rand, n int) []string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	out := make([]string, n)
	for i := range out {
		var sb strings.Builder
		l := 3 + rng.Intn(8)
		for j := 0; j < l; j++ {
			sb.WriteByte(letters[rng.Intn(len(letters))])
		}
		out[i] = sb.String()
	}
	return out
}

func TestHashTokenSpread(t *testing.T) {
	// FNV-1a over short tokens should not collide across a modest vocabulary.
	seen := make(map[uint64]string)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		tok := randomBag(rng, 1)[0]
		h := HashToken(tok)
		if prev, ok := seen[h]; ok && prev != tok {
			t.Fatalf("hash collision between %q and %q", prev, tok)
		}
		seen[h] = tok
	}
}

func BenchmarkHash(b *testing.B) {
	tokens := strings.Fields("over 300 people missing after south korean ferry sinks reuters story link breaking news update")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Hash(tokens)
	}
}

func BenchmarkDistance(b *testing.B) {
	x, y := Fingerprint(0xdeadbeefcafebabe), Fingerprint(0x123456789abcdef0)
	for i := 0; i < b.N; i++ {
		if Distance(x, y) < 0 {
			b.Fatal("impossible")
		}
	}
}
