//go:build !race

// The heap-footprint and AllocsPerRun assertions live behind !race: the race
// detector instruments allocations and would distort both.

package simindex

import (
	"math/rand"
	"runtime"
	"testing"

	"firehose/internal/simhash"
)

func liveHeap() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// TestPruneReleasesBucketMemory is the regression test for the bucket-memory
// leak: a burst of distinct fingerprints followed by a quiet steady state
// must not pin the burst's footprint. Before the freelist + in-place prune +
// map compaction, the tables' emptied buckets and grown map bucket arrays
// survived every PruneBefore, so a long-running stream with rotating content
// held memory proportional to its peak, not its window.
func TestPruneReleasesBucketMemory(t *testing.T) {
	idx := mustIndex(t, Params{K: 2, Blocks: 3})
	rng := rand.New(rand.NewSource(7))
	base := liveHeap()

	// Burst: 60k distinct fingerprints in one window.
	for i := 0; i < 60_000; i++ {
		idx.Add(Entry{FP: simhash.Fingerprint(rng.Uint64()), ID: uint64(i + 1), Time: int64(i)})
	}
	peak := liveHeap() - base
	if peak < 1<<20 {
		t.Fatalf("burst grew the heap by only %d bytes; the test lost its signal", peak)
	}

	// The window passes, then a quiet steady state: ~100 live entries.
	idx.PruneBefore(60_000)
	for i := 0; i < 2_000; i++ {
		now := int64(60_000 + i)
		idx.Add(Entry{FP: simhash.Fingerprint(rng.Uint64()), ID: uint64(100_000 + i), Time: now})
		idx.PruneBefore(now - 100)
	}
	after := liveHeap() - base
	runtime.KeepAlive(idx)

	if after > peak/4 {
		t.Fatalf("index retains %d bytes after the burst drained (peak %d); bucket memory is not being released", after, peak)
	}
}

// TestSteadyStateAllocs pins the windowed steady state — one Add and one
// expiry per operation — as (amortized) allocation-free: recycled buckets
// absorb the Add side and in-place shifts the prune side. A small tolerance
// covers the Go runtime's occasional map housekeeping under churn.
func TestSteadyStateAllocs(t *testing.T) {
	idx := mustIndex(t, Params{K: 3, Blocks: 4})
	rng := rand.New(rand.NewSource(8))
	var now int64
	var nextID uint64
	push := func() {
		now += 10
		nextID++
		idx.Add(Entry{FP: simhash.Fingerprint(rng.Uint64()), ID: nextID, Time: now})
		idx.PruneBefore(now - 2_000)
	}
	for i := 0; i < 2_000; i++ {
		push()
	}
	if avg := testing.AllocsPerRun(2_000, push); avg > 0.05 {
		t.Fatalf("steady-state Add+PruneBefore allocates %.3f objects per op, want ~0", avg)
	}
}
