package simindex

import (
	"math"
	"testing"
)

func TestParamsValidateEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"zero distance, one block", Params{K: 0, Blocks: 1}, false},
		{"manku web setting", Params{K: 3, Blocks: 6}, false},
		{"max blocks", Params{K: 18, Blocks: 64}, false},
		{"widest valid K", Params{K: 63, Blocks: 64}, false},
		{"negative K", Params{K: -1, Blocks: 4}, true},
		{"K at fingerprint size", Params{K: 64, Blocks: 64}, true},
		{"blocks equal K", Params{K: 6, Blocks: 6}, true},
		{"blocks below K", Params{K: 6, Blocks: 3}, true},
		{"blocks above size", Params{K: 3, Blocks: 65}, true},
		{"zero blocks", Params{K: 0, Blocks: 0}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate(%+v) = %v, wantErr %v", tc.p, err, tc.wantErr)
			}
		})
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1},
		{10, 0, 1},  // k = 0: one way
		{10, 10, 1}, // k = n: one way
		{10, 11, 0}, // k > n: none
		{10, -1, 0}, // negative k: none
		{10, 3, 120},
		{10, 7, 120}, // symmetry C(n,k) = C(n,n-k)
		{64, 1, 64},
		{64, 63, 64},
		{29, 18, 34597290},           // the paper's λc=18 table count
		{64, 20, 19619725782651120},  // large but exact
		{60, 30, 118264581564861424}, // largest exact case nearby
		{64, 32, math.MaxInt64},      // overflows: saturates instead of wrapping
		{62, 31, math.MaxInt64},      // still saturated
	}
	for _, tc := range cases {
		if got := binomial(tc.n, tc.k); got != tc.want {
			t.Errorf("binomial(%d,%d) = %d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestFeasiblePlansEdgeCases(t *testing.T) {
	t.Run("k=0 needs a single table", func(t *testing.T) {
		plans := FeasiblePlans([]int{0}, 24)
		if len(plans) != 1 {
			t.Fatalf("got %d plans", len(plans))
		}
		p := plans[0]
		if p.Tables != 1 {
			t.Fatalf("k=0 tables = %d, want 1 (exact-match lookup)", p.Tables)
		}
		if p.KeyBits < 24 {
			t.Fatalf("k=0 key bits = %d below floor", p.KeyBits)
		}
		if p.Params.Validate() != nil {
			t.Fatalf("chosen params invalid: %+v", p.Params)
		}
	})

	t.Run("infeasible key floor falls back to minimal blocks", func(t *testing.T) {
		// k=60 with a 16-bit key floor needs 64·(b−60)/b ≥ 16, i.e. b ≥ 80 —
		// impossible with 64 bits. The fallback reports blocks=k+1 so the
		// blow-up is visible rather than the k silently vanishing.
		plans := FeasiblePlans([]int{60}, 16)
		p := plans[0]
		if p.Params.Blocks != 61 {
			t.Fatalf("fallback blocks = %d, want 61", p.Params.Blocks)
		}
		if p.Tables != 61 { // C(61,60)
			t.Fatalf("fallback tables = %d, want 61", p.Tables)
		}
		if p.KeyBits != 64/61 {
			t.Fatalf("fallback key bits = %d", p.KeyBits)
		}
	})

	t.Run("plans keep input order and stay feasible", func(t *testing.T) {
		ks := []int{3, 6, 10, 14, 18}
		plans := FeasiblePlans(ks, 24)
		if len(plans) != len(ks) {
			t.Fatalf("got %d plans for %d ks", len(plans), len(ks))
		}
		for i, p := range plans {
			if p.Params.K != ks[i] {
				t.Fatalf("plan %d is for k=%d, want %d", i, p.Params.K, ks[i])
			}
			if p.KeyBits < 24 {
				t.Fatalf("k=%d key bits %d below requested floor", p.Params.K, p.KeyBits)
			}
			if p.Tables <= 0 {
				t.Fatalf("k=%d has %d tables", p.Params.K, p.Tables)
			}
			if p.CopiesGB <= 0 {
				t.Fatalf("k=%d CopiesGB = %v", p.Params.K, p.CopiesGB)
			}
			if i > 0 && p.Tables < plans[i-1].Tables {
				t.Fatalf("table count not monotone in k: %d after %d", p.Tables, plans[i-1].Tables)
			}
		}
	})

	t.Run("empty input", func(t *testing.T) {
		if plans := FeasiblePlans(nil, 24); len(plans) != 0 {
			t.Fatalf("got %d plans for no ks", len(plans))
		}
	})
}
