// Package simindex implements a Manku-style SimHash lookup index (block
// permutation over fingerprint bits, one table per block combination) and
// the feasibility analysis behind the paper's Section 3 decision NOT to use
// one.
//
// Manku, Jain and Das Sarma ("Detecting near-duplicates for web crawling",
// WWW 2007) retrieve all fingerprints within Hamming distance k of a query
// by the pigeonhole principle: split the 64 bits into b > k blocks; any
// fingerprint within distance k agrees with the query exactly on at least
// b−k blocks, so indexing every (b−k)-block combination guarantees recall.
// The number of tables is C(b, b−k) = C(b, k) and each stored fingerprint is
// copied into every table.
//
// This works beautifully at the k=3 they used for web pages. The paper's
// normalized-tweet threshold is λc = 18, and C(b, 18) with block keys wide
// enough to be selective explodes combinatorially — which is why Section 4
// falls back to linear scans pruned by the time and author dimensions. The
// TableCount and FeasiblePlans functions quantify that blow-up exactly; the
// Index type makes the k≤~6 regime available to applications with stricter
// content thresholds.
package simindex

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"firehose/internal/simhash"
)

// Params selects an index layout.
type Params struct {
	// K is the maximum Hamming distance queries must retrieve.
	K int
	// Blocks is the number of bit blocks b; must satisfy K < Blocks <= 64.
	// Each table keys on a combination of Blocks−K blocks, i.e. on roughly
	// 64·(Blocks−K)/Blocks bits.
	Blocks int
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.K < 0 || p.K >= simhash.Size {
		return fmt.Errorf("simindex: K must be in [0,%d), got %d", simhash.Size, p.K)
	}
	if p.Blocks <= p.K || p.Blocks > simhash.Size {
		return fmt.Errorf("simindex: Blocks must be in (K, %d], got %d", simhash.Size, p.Blocks)
	}
	return nil
}

// KeyBits returns the effective key width of each table: the total bits in a
// (b−k)-block combination. Wider keys mean more selective buckets.
func (p Params) KeyBits() int {
	return simhash.Size * (p.Blocks - p.K) / p.Blocks
}

// TableCount returns C(Blocks, K), the number of tables (and the number of
// copies stored per fingerprint).
func (p Params) TableCount() int64 {
	return binomial(p.Blocks, p.K)
}

func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := int64(1)
	for i := 1; i <= k; i++ {
		// Overflow guard: cap at MaxInt64 / 2 and saturate.
		if r > math.MaxInt64/int64(n-k+i) {
			return math.MaxInt64
		}
		r = r * int64(n-k+i) / int64(i)
	}
	return r
}

// Plan describes a feasible layout for a given K and minimum key width.
type Plan struct {
	Params   Params
	KeyBits  int
	Tables   int64
	CopiesGB float64 // storage for 1e6 fingerprints at 16B per table entry
}

// FeasiblePlans enumerates, for each distance threshold, the cheapest block
// layout whose table keys are at least minKeyBits wide (selectivity floor).
// It reproduces the paper's argument: at λc=3 a handful of tables suffice;
// at λc=18 the cheapest acceptable layout needs an astronomical table count.
func FeasiblePlans(ks []int, minKeyBits int) []Plan {
	plans := make([]Plan, 0, len(ks))
	for _, k := range ks {
		best := Plan{Tables: math.MaxInt64}
		for b := k + 1; b <= simhash.Size; b++ {
			p := Params{K: k, Blocks: b}
			if p.KeyBits() < minKeyBits {
				continue
			}
			if t := p.TableCount(); t < best.Tables {
				best = Plan{Params: p, KeyBits: p.KeyBits(), Tables: t}
			}
		}
		if best.Tables == math.MaxInt64 {
			// No layout meets the key-width floor (k too large): report the
			// minimal-blocks layout anyway so the blow-up is visible.
			p := Params{K: k, Blocks: k + 1}
			best = Plan{Params: p, KeyBits: p.KeyBits(), Tables: p.TableCount()}
		}
		best.CopiesGB = float64(best.Tables) * 1e6 * 16 / (1 << 30)
		plans = append(plans, best)
	}
	return plans
}

// Entry is one indexed fingerprint with its owner id, a caller-defined
// auxiliary value (the streaming diversifier stores the author id there) and
// a timestamp for the λt window eviction the streaming setting needs.
type Entry struct {
	FP   simhash.Fingerprint
	ID   uint64
	Aux  int32
	Time int64
}

// Index is the block-permutation index. It is not safe for concurrent use.
type Index struct {
	params Params
	// combos[i] lists the block indices forming table i's key.
	combos [][]int
	// blockOf[bit] is the block containing that bit; blockShift/blockWidth
	// give each block's position.
	blockStart, blockWidth []int
	tables                 []map[uint64][]Entry
	size                   int
	// freeBuckets recycles emptied bucket slices between Remove/PruneBefore
	// and Add, so a steady windowed stream (one entry in, one entry out)
	// allocates nothing per operation. Bounded: see maxFreeBuckets.
	freeBuckets [][]Entry
	// peakKeys[i] tracks the high-water key count of table i since its last
	// rebuild. Go maps never shrink their bucket arrays, so after a traffic
	// burst a table whose keys have mostly expired still pins its peak
	// footprint; when the live key count falls below a quarter of the peak
	// the table is rebuilt compactly (see maybeCompact).
	peakKeys []int
}

// MinKeyBits is the selectivity floor New enforces: a table keyed on fewer
// bits degenerates into scanning large buckets, defeating the index. Block
// layouts for large K can only meet the floor with combinatorially many
// tables — the two constraints together are the paper's Section 3
// infeasibility at λc = 18.
const MinKeyBits = 16

// AutoMaxTables is the copy-factor ceiling of the automatic feasibility rule:
// AutoParams accepts a layout only when the cheapest block arrangement that
// meets the MinKeyBits selectivity floor needs at most this many tables. The
// bound is deliberately conservative — one uint64 fingerprint copied 64 times
// is 512 bytes per stored post, comparable to the post itself — and it places
// the auto cutoff at K ≤ 6, exactly the "strict content threshold" regime the
// paper's Section 3 analysis leaves open (at K=7 the cheapest acceptable
// layout already needs C(10,7) = 120 tables).
const AutoMaxTables = 64

// AutoParams applies the paper's Section 3 feasibility test to a Hamming
// distance threshold k: it returns the cheapest block layout whose table keys
// meet the MinKeyBits floor, and ok=false when that layout needs more than
// AutoMaxTables tables — the regime where the linear scan wins and callers
// must keep it.
func AutoParams(k int) (Params, bool) {
	if k < 0 || k >= simhash.Size {
		return Params{}, false
	}
	if k == 0 {
		return Params{K: 0, Blocks: 1}, true
	}
	best, bestTables := Params{}, int64(math.MaxInt64)
	for b := k + 1; b <= simhash.Size; b++ {
		p := Params{K: k, Blocks: b}
		if p.KeyBits() < MinKeyBits {
			continue
		}
		if t := p.TableCount(); t < bestTables {
			best, bestTables = p, t
		}
	}
	if bestTables > AutoMaxTables {
		return Params{}, false
	}
	return best, true
}

// New builds an empty index.
func New(p Params) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.K > 0 && p.KeyBits() < MinKeyBits {
		return nil, fmt.Errorf("simindex: layout keys on %d bits (min %d); "+
			"buckets would not be selective — use more blocks", p.KeyBits(), MinKeyBits)
	}
	const maxTables = 1 << 16
	if t := p.TableCount(); t > maxTables {
		return nil, fmt.Errorf("simindex: layout needs %d tables (max %d); "+
			"this is the Section 3 infeasibility — lower K or accept linear scans", t, maxTables)
	}
	idx := &Index{params: p}
	// Block geometry: Blocks blocks covering 64 bits as evenly as possible.
	base, extra := simhash.Size/p.Blocks, simhash.Size%p.Blocks
	start := 0
	for i := 0; i < p.Blocks; i++ {
		w := base
		if i < extra {
			w++
		}
		idx.blockStart = append(idx.blockStart, start)
		idx.blockWidth = append(idx.blockWidth, w)
		start += w
	}
	// All combinations of Blocks−K blocks.
	idx.combos = combinations(p.Blocks, p.Blocks-p.K)
	idx.tables = make([]map[uint64][]Entry, len(idx.combos))
	for i := range idx.tables {
		idx.tables[i] = make(map[uint64][]Entry)
	}
	idx.peakKeys = make([]int, len(idx.combos))
	return idx, nil
}

func combinations(n, k int) [][]int {
	var out [][]int
	combo := make([]int, k)
	var rec func(start, i int)
	rec = func(start, i int) {
		if i == k {
			out = append(out, append([]int(nil), combo...))
			return
		}
		for v := start; v <= n-(k-i); v++ {
			combo[i] = v
			rec(v+1, i+1)
		}
	}
	rec(0, 0)
	return out
}

// key extracts and concatenates the blocks of combo from fp.
func (idx *Index) key(fp simhash.Fingerprint, combo []int) uint64 {
	var key uint64
	shift := 0
	for _, b := range combo {
		w := idx.blockWidth[b]
		bits := (uint64(fp) >> uint(idx.blockStart[b])) & ((1 << uint(w)) - 1)
		key |= bits << uint(shift)
		shift += w
	}
	return key
}

// Params returns the index layout.
func (idx *Index) Params() Params { return idx.params }

// Len returns the number of indexed entries (not copies).
func (idx *Index) Len() int { return idx.size }

// Copies returns the number of stored entry copies (Len × TableCount).
func (idx *Index) Copies() int64 { return int64(idx.size) * idx.params.TableCount() }

// maxFreeBuckets caps the bucket freelist so a burst's worth of emptied
// buckets is not pinned forever; beyond the cap, emptied buckets go to the
// garbage collector.
const maxFreeBuckets = 1024

// newBucket pops a recycled bucket slice (length 0, capacity preserved) or
// returns nil, letting append allocate.
func (idx *Index) newBucket() []Entry {
	if n := len(idx.freeBuckets); n > 0 {
		b := idx.freeBuckets[n-1]
		idx.freeBuckets[n-1] = nil
		idx.freeBuckets = idx.freeBuckets[:n-1]
		return b
	}
	return nil
}

// recycleBucket returns an emptied bucket's storage to the freelist.
func (idx *Index) recycleBucket(b []Entry) {
	if cap(b) == 0 || len(idx.freeBuckets) >= maxFreeBuckets {
		return
	}
	idx.freeBuckets = append(idx.freeBuckets, b[:0])
}

// maybeCompact rebuilds table i into a right-sized map once its live key
// count has fallen below a quarter of its high-water mark. delete() alone
// never returns a Go map's bucket array to the allocator, so without this a
// burst of distinct fingerprints would pin its peak footprint for the rest of
// the stream — the index analogue of postbin's shrink-on-prune policy.
func (idx *Index) maybeCompact(i int) {
	const minCompactKeys = 64
	live := len(idx.tables[i])
	if idx.peakKeys[i] < minCompactKeys || live >= idx.peakKeys[i]/4 {
		return
	}
	nt := make(map[uint64][]Entry, live)
	for k, b := range idx.tables[i] {
		nt[k] = b
	}
	idx.tables[i] = nt
	idx.peakKeys[i] = live
}

// Add indexes an entry into every table. Timestamps must be non-decreasing.
func (idx *Index) Add(e Entry) {
	for i, combo := range idx.combos {
		k := idx.key(e.FP, combo)
		t := idx.tables[i]
		b, ok := t[k]
		if !ok {
			b = idx.newBucket()
		}
		t[k] = append(b, e)
		if !ok && len(t) > idx.peakKeys[i] {
			idx.peakKeys[i] = len(t)
		}
	}
	idx.size++
}

// Covered is the hot-path probe: it reports whether any indexed entry lies
// within Hamming distance K of fp, has Time >= minTime and satisfies pred
// (nil means no extra predicate). Unlike Query it allocates nothing, stops at
// the first hit, and does not deduplicate — an entry failing pred may be
// probed again through another table, which only affects the probe count
// (pred must be pure). probes counts bucket entries touched, the index
// analogue of the scan algorithms' pairwise comparisons.
func (idx *Index) Covered(fp simhash.Fingerprint, minTime int64, pred func(Entry) bool) (covered bool, probes int) {
	maxDist := idx.params.K
	for i, combo := range idx.combos {
		k := idx.key(fp, combo)
		for _, e := range idx.tables[i][k] {
			probes++
			if e.Time < minTime {
				continue
			}
			if bits.OnesCount64(uint64(e.FP^fp)) > maxDist {
				continue
			}
			if pred == nil || pred(e) {
				return true, probes
			}
		}
	}
	return false, probes
}

// Remove deletes the entry with the given fingerprint and id from every
// table, reporting whether it was present. Callers that evict in time order
// (the streaming window) hit the front of each bucket, since buckets are
// append-ordered by arrival.
func (idx *Index) Remove(fp simhash.Fingerprint, id uint64) bool {
	removed := false
	for i, combo := range idx.combos {
		k := idx.key(fp, combo)
		t := idx.tables[i]
		bucket := t[k]
		for j := range bucket {
			if bucket[j].ID != id {
				continue
			}
			copy(bucket[j:], bucket[j+1:])
			bucket = bucket[:len(bucket)-1]
			if len(bucket) == 0 {
				delete(t, k)
				idx.recycleBucket(bucket)
				idx.maybeCompact(i)
			} else {
				t[k] = bucket
			}
			removed = true
			break
		}
	}
	if removed {
		idx.size--
	}
	return removed
}

// EntriesByTime returns every indexed entry exactly once, sorted by (Time,
// ID) — a canonical order for checkpoint writers. It allocates; not for the
// hot path.
func (idx *Index) EntriesByTime() []Entry {
	out := make([]Entry, 0, idx.size)
	for _, bucket := range idx.tables[0] {
		out = append(out, bucket...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Query returns all indexed entries within Hamming distance K of fp and
// with Time >= minTime, deduplicated and sorted by id. By the pigeonhole
// construction recall is exact; candidate verification filters the false
// positives each table's partial-key match admits. The number of candidate
// probes (bucket entries touched) is returned alongside, so callers can
// account comparisons the way the paper does.
func (idx *Index) Query(fp simhash.Fingerprint, minTime int64) (matches []Entry, probes int) {
	seen := make(map[uint64]bool)
	for i, combo := range idx.combos {
		k := idx.key(fp, combo)
		for _, e := range idx.tables[i][k] {
			probes++
			if e.Time < minTime || seen[e.ID] {
				continue
			}
			if bits.OnesCount64(uint64(e.FP^fp)) <= idx.params.K {
				seen[e.ID] = true
				matches = append(matches, e)
			}
		}
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].ID < matches[j].ID })
	return matches, probes
}

// PruneBefore drops entries older than cutoff from every bucket and returns
// the number of distinct entries removed. Emptied buckets are deleted and
// their storage recycled, surviving buckets are shifted in place (and
// reallocated smaller once occupancy falls below a quarter of a
// non-trivial capacity), and tables whose key count collapsed are rebuilt
// compactly — so a long-running stream with rotating content holds memory
// proportional to its live window, not to its history.
func (idx *Index) PruneBefore(cutoff int64) int {
	removed := 0
	for i := range idx.tables {
		t := idx.tables[i]
		for k, bucket := range t {
			// Entries are appended in time order; find the first survivor.
			j := 0
			for j < len(bucket) && bucket[j].Time < cutoff {
				j++
			}
			if j == 0 {
				continue
			}
			if i == 0 {
				// Count each entry once (every entry appears in table 0).
				removed += j
			}
			if j == len(bucket) {
				delete(t, k)
				idx.recycleBucket(bucket)
				continue
			}
			n := copy(bucket, bucket[j:])
			bucket = bucket[:n]
			if c := cap(bucket); c >= 16 && n < c/4 {
				shrunk := make([]Entry, n, max(n, c/2))
				copy(shrunk, bucket)
				bucket = shrunk
			}
			t[k] = bucket
		}
		idx.maybeCompact(i)
	}
	idx.size -= removed
	return removed
}
