package simindex

import (
	"math/rand"
	"reflect"
	"testing"

	"firehose/internal/simhash"
)

func TestParamsValidate(t *testing.T) {
	good := []Params{{K: 3, Blocks: 6}, {K: 0, Blocks: 1}, {K: 6, Blocks: 16}}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Fatalf("%+v rejected: %v", p, err)
		}
	}
	bad := []Params{{K: -1, Blocks: 4}, {K: 64, Blocks: 65}, {K: 3, Blocks: 3}, {K: 3, Blocks: 65}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("%+v accepted", p)
		}
	}
}

func TestTableCountBinomial(t *testing.T) {
	tests := []struct {
		p    Params
		want int64
	}{
		{Params{K: 3, Blocks: 6}, 20},           // C(6,3)
		{Params{K: 3, Blocks: 4}, 4},            // C(4,3)... C(4,3)=4
		{Params{K: 1, Blocks: 4}, 4},            // C(4,1)
		{Params{K: 0, Blocks: 1}, 1},            // exact match, one table
		{Params{K: 2, Blocks: 8}, 28},           // C(8,2)
		{Params{K: 18, Blocks: 36}, 9075135300}, // C(36,18)
	}
	for _, tc := range tests {
		if got := tc.p.TableCount(); got != tc.want {
			t.Fatalf("TableCount(%+v) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

func TestKeyBits(t *testing.T) {
	if got := (Params{K: 3, Blocks: 4}).KeyBits(); got != 16 {
		t.Fatalf("KeyBits = %d, want 16 (one of four 16-bit blocks)", got)
	}
	if got := (Params{K: 3, Blocks: 6}).KeyBits(); got != 32 {
		t.Fatalf("KeyBits = %d, want 32", got)
	}
}

func TestFeasiblePlansBlowUp(t *testing.T) {
	plans := FeasiblePlans([]int{3, 6, 10, 14, 18}, 24)
	if len(plans) != 5 {
		t.Fatalf("plans = %d", len(plans))
	}
	// Monotone explosion: each threshold needs at least as many tables.
	for i := 1; i < len(plans); i++ {
		if plans[i].Tables < plans[i-1].Tables {
			t.Fatalf("tables should grow with k: %+v", plans)
		}
	}
	// λc=3 is cheap (paper: the web-crawling regime)...
	if plans[0].Tables > 100 {
		t.Fatalf("k=3 needs %d tables, should be small", plans[0].Tables)
	}
	// ...and λc=18 is astronomically out of reach (the Section 3 claim).
	if plans[4].Tables < 1_000_000 {
		t.Fatalf("k=18 needs only %d tables; the infeasibility argument failed", plans[4].Tables)
	}
}

func TestNewRejectsInfeasible(t *testing.T) {
	// The Section 3 claim as an exhaustive check: NO block layout makes
	// λc=18 indexable — small block counts fail the key-selectivity floor,
	// large ones the table budget.
	for b := 19; b <= 64; b++ {
		if _, err := New(Params{K: 18, Blocks: b}); err == nil {
			t.Fatalf("λc=18 layout with %d blocks accepted", b)
		}
	}
	if _, err := New(Params{K: 3, Blocks: 2}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestCombinations(t *testing.T) {
	got := combinations(4, 2)
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("combinations(4,2) = %v", got)
	}
	if len(combinations(6, 3)) != 20 {
		t.Fatal("combinations(6,3) wrong size")
	}
}

func mustIndex(t *testing.T, p Params) *Index {
	t.Helper()
	idx, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestQueryExactRecall(t *testing.T) {
	// Pigeonhole guarantee: Query finds exactly the brute-force matches.
	rng := rand.New(rand.NewSource(1))
	for _, p := range []Params{{K: 3, Blocks: 6}, {K: 2, Blocks: 8}, {K: 5, Blocks: 8}, {K: 0, Blocks: 1}} {
		idx := mustIndex(t, p)
		var all []Entry
		base := simhash.Fingerprint(rng.Uint64())
		for i := 0; i < 400; i++ {
			fp := base
			// Half the entries cluster near base, half are random.
			if i%2 == 0 {
				for f := rng.Intn(p.K + 3); f > 0; f-- {
					fp ^= 1 << uint(rng.Intn(64))
				}
			} else {
				fp = simhash.Fingerprint(rng.Uint64())
			}
			e := Entry{FP: fp, ID: uint64(i + 1), Aux: int32(i), Time: int64(i)}
			idx.Add(e)
			all = append(all, e)
		}
		for trial := 0; trial < 50; trial++ {
			q := base
			for f := rng.Intn(p.K + 4); f > 0; f-- {
				q ^= 1 << uint(rng.Intn(64))
			}
			minTime := int64(rng.Intn(300))
			got, _ := idx.Query(q, minTime)
			var want []uint64
			for _, e := range all {
				if e.Time >= minTime && simhash.Distance(e.FP, q) <= p.K {
					want = append(want, e.ID)
				}
			}
			gotIDs := make([]uint64, len(got))
			for i, e := range got {
				gotIDs[i] = e.ID
			}
			if len(gotIDs) != len(want) {
				t.Fatalf("params %+v: got %d matches, want %d", p, len(gotIDs), len(want))
			}
			for i := range want {
				if gotIDs[i] != want[i] {
					t.Fatalf("params %+v: query mismatch: got %v want %v", p, gotIDs, want)
				}
			}
		}
	}
}

func TestQueryReturnsAux(t *testing.T) {
	idx := mustIndex(t, Params{K: 1, Blocks: 4})
	idx.Add(Entry{FP: 0xABC, ID: 7, Aux: 42, Time: 1})
	got, _ := idx.Query(0xABC, 0)
	if len(got) != 1 || got[0].Aux != 42 {
		t.Fatalf("Query = %+v", got)
	}
}

func TestPruneBefore(t *testing.T) {
	idx := mustIndex(t, Params{K: 2, Blocks: 6})
	for i := 0; i < 100; i++ {
		idx.Add(Entry{FP: simhash.Fingerprint(i) * 0x9E3779B97F4A7C15, ID: uint64(i + 1), Time: int64(i)})
	}
	if idx.Len() != 100 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if got := idx.PruneBefore(50); got != 50 {
		t.Fatalf("pruned %d, want 50", got)
	}
	if idx.Len() != 50 {
		t.Fatalf("Len after prune = %d", idx.Len())
	}
	// No pruned entry is ever returned.
	for i := 0; i < 50; i++ {
		got, _ := idx.Query(simhash.Fingerprint(i)*0x9E3779B97F4A7C15, 0)
		if len(got) != 0 {
			t.Fatalf("pruned entry %d still queryable", i)
		}
	}
	if got := idx.PruneBefore(50); got != 0 {
		t.Fatalf("double prune removed %d", got)
	}
	if got := idx.PruneBefore(1000); got != 50 {
		t.Fatalf("full prune removed %d", got)
	}
	if idx.Len() != 0 {
		t.Fatalf("Len after full prune = %d", idx.Len())
	}
}

func TestCopies(t *testing.T) {
	idx := mustIndex(t, Params{K: 3, Blocks: 6}) // 20 tables
	idx.Add(Entry{FP: 1, ID: 1, Time: 1})
	idx.Add(Entry{FP: 2, ID: 2, Time: 2})
	if got := idx.Copies(); got != 40 {
		t.Fatalf("Copies = %d, want 40", got)
	}
}

func BenchmarkQuery(b *testing.B) {
	idx, err := New(Params{K: 3, Blocks: 6})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		idx.Add(Entry{FP: simhash.Fingerprint(rng.Uint64()), ID: uint64(i), Time: int64(i)})
	}
	q := simhash.Fingerprint(rng.Uint64())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Query(q, 0)
	}
}

func TestAutoParams(t *testing.T) {
	// The feasibility cutoff: K ≤ 6 gets a layout within AutoMaxTables
	// tables, K ≥ 7 does not (C(10,7)=120 is the cheapest acceptable layout).
	wantTables := map[int]int64{0: 1, 1: 2, 2: 3, 3: 4, 4: 15, 5: 21, 6: 28}
	for k := 0; k <= 6; k++ {
		p, ok := AutoParams(k)
		if !ok {
			t.Fatalf("AutoParams(%d) infeasible, want feasible", k)
		}
		if p.K != k || p.TableCount() != wantTables[k] {
			t.Fatalf("AutoParams(%d) = %+v (%d tables), want %d tables", k, p, p.TableCount(), wantTables[k])
		}
		if k > 0 && p.KeyBits() < MinKeyBits {
			t.Fatalf("AutoParams(%d) keys on %d bits, below floor", k, p.KeyBits())
		}
		if _, err := New(p); err != nil {
			t.Fatalf("AutoParams(%d) layout rejected by New: %v", k, err)
		}
	}
	for _, k := range []int{7, 10, 18, 63, -1, 64} {
		if p, ok := AutoParams(k); ok {
			t.Fatalf("AutoParams(%d) = %+v, want infeasible", k, p)
		}
	}
}

func TestCoveredMatchesQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, p := range []Params{{K: 3, Blocks: 6}, {K: 2, Blocks: 8}, {K: 6, Blocks: 8}, {K: 0, Blocks: 1}} {
		idx := mustIndex(t, p)
		base := simhash.Fingerprint(rng.Uint64())
		var all []Entry
		for i := 0; i < 300; i++ {
			fp := base
			if i%2 == 0 {
				for f := rng.Intn(p.K + 3); f > 0; f-- {
					fp ^= 1 << uint(rng.Intn(64))
				}
			} else {
				fp = simhash.Fingerprint(rng.Uint64())
			}
			e := Entry{FP: fp, ID: uint64(i + 1), Aux: int32(i % 5), Time: int64(i)}
			idx.Add(e)
			all = append(all, e)
		}
		for trial := 0; trial < 200; trial++ {
			q := base
			for f := rng.Intn(p.K + 4); f > 0; f-- {
				q ^= 1 << uint(rng.Intn(64))
			}
			minTime := int64(rng.Intn(300))
			var pred func(Entry) bool
			wantAux := int32(-1)
			if trial%2 == 1 {
				wantAux = int32(rng.Intn(5))
				pred = func(e Entry) bool { return e.Aux == wantAux }
			}
			want := false
			for _, e := range all {
				if e.Time >= minTime && simhash.Distance(e.FP, q) <= p.K &&
					(wantAux < 0 || e.Aux == wantAux) {
					want = true
					break
				}
			}
			got, probes := idx.Covered(q, minTime, pred)
			if got != want {
				t.Fatalf("params %+v: Covered = %v, brute force = %v", p, got, want)
			}
			if got && probes == 0 {
				t.Fatalf("params %+v: covered with zero probes", p)
			}
		}
	}
}

func TestRemove(t *testing.T) {
	idx := mustIndex(t, Params{K: 2, Blocks: 6})
	var entries []Entry
	for i := 0; i < 200; i++ {
		e := Entry{FP: simhash.Fingerprint(i) * 0x9E3779B97F4A7C15, ID: uint64(i + 1), Time: int64(i)}
		idx.Add(e)
		entries = append(entries, e)
	}
	if idx.Remove(entries[5].FP, 999999) {
		t.Fatal("removed an id that was never added")
	}
	for i, e := range entries[:100] {
		if !idx.Remove(e.FP, e.ID) {
			t.Fatalf("entry %d not found for removal", i)
		}
	}
	if idx.Len() != 100 {
		t.Fatalf("Len after removals = %d, want 100", idx.Len())
	}
	for i, e := range entries {
		cov, _ := idx.Covered(e.FP, 0, func(m Entry) bool { return m.ID == e.ID })
		if want := i >= 100; cov != want {
			t.Fatalf("entry %d: covered = %v, want %v", i, cov, want)
		}
	}
	if idx.Remove(entries[0].FP, entries[0].ID) {
		t.Fatal("double remove succeeded")
	}
}

// TestChurnConsistency drives the index through the streaming lifecycle —
// interleaved Add, Remove-oldest and PruneBefore — and cross-checks Query
// against brute force throughout, exercising the bucket freelist, in-place
// prune shifts and map compaction.
func TestChurnConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	idx := mustIndex(t, Params{K: 3, Blocks: 6})
	base := simhash.Fingerprint(rng.Uint64())
	var live []Entry
	now, nextID := int64(0), uint64(1)
	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(10); {
		case op < 6: // add
			now += int64(rng.Intn(3))
			fp := base
			for f := rng.Intn(8); f > 0; f-- {
				fp ^= 1 << uint(rng.Intn(64))
			}
			e := Entry{FP: fp, ID: nextID, Aux: int32(nextID), Time: now}
			nextID++
			idx.Add(e)
			live = append(live, e)
		case op < 8: // remove oldest
			if len(live) > 0 {
				if !idx.Remove(live[0].FP, live[0].ID) {
					t.Fatalf("step %d: oldest entry missing", step)
				}
				live = live[1:]
			}
		default: // prune a window edge
			cutoff := now - int64(rng.Intn(50))
			want := 0
			for len(live) > want && live[want].Time < cutoff {
				want++
			}
			if got := idx.PruneBefore(cutoff); got != want {
				t.Fatalf("step %d: pruned %d, want %d", step, got, want)
			}
			live = live[want:]
		}
		if idx.Len() != len(live) {
			t.Fatalf("step %d: Len = %d, want %d", step, idx.Len(), len(live))
		}
		if step%200 == 0 {
			q := base
			for f := rng.Intn(8); f > 0; f-- {
				q ^= 1 << uint(rng.Intn(64))
			}
			got, _ := idx.Query(q, 0)
			want := 0
			for _, e := range live {
				if simhash.Distance(e.FP, q) <= 3 {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("step %d: query found %d, brute force %d", step, len(got), want)
			}
		}
	}
}
