package stream

import (
	"errors"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"firehose/internal/authorsim"
	"firehose/internal/core"
)

// TestParallelBatchMatchesSequential is the batch-path equivalence property:
// feeding the stream through OfferBatch in random-size chunks produces
// exactly the per-post deliveries (and counter totals) of the sequential
// solver offering posts one by one.
func TestParallelBatchMatchesSequential(t *testing.T) {
	g, subs, posts := parallelScenario(t, 31, 250)
	th := core.Thresholds{LambdaC: 18, LambdaT: 30 * 60 * 1000, LambdaA: 0.7}

	seq, err := core.NewSharedMultiUser(core.AlgUniBin, g, subs, th)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int32, len(posts))
	for i, p := range posts {
		want[i] = slices.Clone(seq.Offer(p))
	}

	for _, workers := range []int{1, 4} {
		par, err := NewParallelMultiEngine(core.AlgUniBin, g, subs, th, workers)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(workers)))
		var tickets []*BatchTicket
		wantSeq := uint64(1)
		for off := 0; off < len(posts); {
			n := 1 + rng.Intn(16)
			if off+n > len(posts) {
				n = len(posts) - off
			}
			bt, err := par.OfferBatch(posts[off : off+n])
			if err != nil {
				t.Fatal(err)
			}
			if bt.SeqBase() != wantSeq {
				t.Fatalf("workers=%d: batch at %d has SeqBase %d, want %d",
					workers, off, bt.SeqBase(), wantSeq)
			}
			if bt.Len() != n {
				t.Fatalf("workers=%d: batch Len %d, want %d", workers, bt.Len(), n)
			}
			wantSeq += uint64(n)
			tickets = append(tickets, bt)
			off += n
		}
		par.Close()

		i := 0
		for _, bt := range tickets {
			for _, got := range bt.Users() {
				sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
				if !slices.Equal(got, want[i]) {
					t.Fatalf("workers=%d post %d: batch delivered %v, sequential %v",
						workers, posts[i].ID, got, want[i])
				}
				i++
			}
		}

		sc, pc := seq.Counters(), par.Counters()
		if pc.Accepted != sc.Accepted || pc.Rejected != sc.Rejected ||
			pc.Comparisons != sc.Comparisons || pc.Insertions != sc.Insertions {
			t.Fatalf("workers=%d: counters differ: parallel %d/%d/%d/%d vs sequential %d/%d/%d/%d",
				workers,
				pc.Accepted, pc.Rejected, pc.Comparisons, pc.Insertions,
				sc.Accepted, sc.Rejected, sc.Comparisons, sc.Insertions)
		}
	}
}

// TestParallelBatchInterleavesWithOffer checks that single and batch
// ingestion share one sequence space and one stream order.
func TestParallelBatchInterleavesWithOffer(t *testing.T) {
	g := authorsim.NewGraph(4, []authorsim.SimPair{{A: 0, B: 1}, {A: 2, B: 3}}, 0.7)
	th := core.Thresholds{LambdaC: 3, LambdaT: 1000, LambdaA: 0.7}
	e, err := NewParallelMultiEngine(core.AlgUniBin, g, [][]int32{{0, 1, 2, 3}}, th, 2)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := e.Offer(&core.Post{ID: 1, Author: 0, Time: 1, FP: 0})
	if err != nil {
		t.Fatal(err)
	}
	bt, err := e.OfferBatch([]*core.Post{
		{ID: 2, Author: 1, Time: 2, FP: 1},  // covered by post 1
		{ID: 3, Author: 2, Time: 3, FP: 0},  // other component: kept
		{ID: 4, Author: 99, Time: 4, FP: 0}, // unknown author: no one, but keeps its seq
	})
	if err != nil {
		t.Fatal(err)
	}
	t5, err := e.Offer(&core.Post{ID: 5, Author: 3, Time: 5, FP: 1}) // covered by post 3's component? no: covered by... author 3 ~ author 2, FP 1 far from FP 0: kept
	if err != nil {
		t.Fatal(err)
	}
	e.Close()

	if t1.Seq() != 1 || bt.SeqBase() != 2 || t5.Seq() != 5 {
		t.Fatalf("sequence space not shared: %d, %d, %d", t1.Seq(), bt.SeqBase(), t5.Seq())
	}
	users := bt.Users()
	if len(users[0]) != 0 {
		t.Fatalf("near-duplicate in batch delivered to %v", users[0])
	}
	if len(users[1]) != 1 {
		t.Fatalf("fresh batch post delivered to %v", users[1])
	}
	if len(users[2]) != 0 {
		t.Fatalf("unknown author delivered to %v", users[2])
	}
}

// TestParallelBatchAfterClose checks the ErrClosed path.
func TestParallelBatchAfterClose(t *testing.T) {
	g := authorsim.NewGraph(1, nil, 0.7)
	th := core.Thresholds{LambdaC: 3, LambdaT: 1000, LambdaA: 0.7}
	e, _ := NewParallelMultiEngine(core.AlgUniBin, g, [][]int32{{0}}, th, 1)
	e.Close()
	if _, err := e.OfferBatch([]*core.Post{{ID: 1, Author: 0, Time: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("batch after close: got %v, want ErrClosed", err)
	}
}

// TestMultiEngineBatchMatchesOffer checks the sequential engine's batch path
// against its one-by-one path on a fresh identical engine.
func TestMultiEngineBatchMatchesOffer(t *testing.T) {
	g, subs, posts := parallelScenario(t, 33, 120)
	th := core.Thresholds{LambdaC: 18, LambdaT: 30 * 60 * 1000, LambdaA: 0.7}

	newEngine := func() *MultiEngine {
		md, err := core.NewSharedMultiUser(core.AlgUniBin, g, subs, th)
		if err != nil {
			t.Fatal(err)
		}
		return NewMultiEngine(md)
	}

	one := newEngine()
	want := make([][]int32, len(posts))
	for i, p := range posts {
		users, err := one.Offer(p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = users
	}

	batched := newEngine()
	got, err := batched.OfferBatch(posts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range posts {
		if !slices.Equal(got[i], want[i]) {
			t.Fatalf("post %d: batch delivered %v, single %v", posts[i].ID, got[i], want[i])
		}
	}

	os, bs := one.Snapshot(), batched.Snapshot()
	if os.Offered != bs.Offered || os.Delivered != bs.Delivered {
		t.Fatalf("bookkeeping differs: single %d/%d vs batch %d/%d",
			os.Offered, os.Delivered, bs.Offered, bs.Delivered)
	}
	if os.OfferLatency.Count != bs.OfferLatency.Count {
		t.Fatalf("latency observations differ: %d vs %d",
			os.OfferLatency.Count, bs.OfferLatency.Count)
	}
}
