package stream

// Checkpointing for the stream engines. The engines delegate algorithm state
// to core's StateSnapshotter implementations and add their own layer: ingest
// accounting (offer/delivery counts, sequence watermarks) and the
// instrumentation histograms. Timelines are deliberately not checkpointed —
// they are a rebuildable view of delivered posts, unbounded in size, and the
// durable thing is the decision state that determines which future posts get
// delivered.
//
// The parallel engine cannot snapshot mid-flight: workers mutate their shard
// solvers concurrently. quiesce establishes a consistent cut — intake stopped,
// every accepted job decided — and holds it while the caller walks the
// workers; see its comment for the protocol and the memory-ordering argument.

import (
	"fmt"

	"firehose/internal/checkpoint"
	"firehose/internal/core"
)

// SnapshotState writes the engine's decision state: ingest accounting, the
// offer-latency histogram and the solver's full state. Taken under the
// decision lock, so the cut never splits an Offer.
func (m *MultiEngine) SnapshotState(enc *checkpoint.Encoder) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.md.(core.StateSnapshotter)
	if !ok {
		return fmt.Errorf("stream: solver %s does not support checkpointing", m.md.Name())
	}
	enc.String("multiengine")
	enc.Uvarint(m.offered)
	enc.Uvarint(m.delivered)
	core.EncodeHistogram(enc, &m.offerLatency)
	if err := s.SnapshotState(enc); err != nil {
		return err
	}
	return enc.Err()
}

// RestoreState replaces the engine's decision state from a snapshot. The
// engine must be freshly constructed over the same solver shape; timelines
// restart empty (they are view state, not decision state). On error the
// engine must be discarded — the solver may be partially restored.
func (m *MultiEngine) RestoreState(dec *checkpoint.Decoder) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return ErrClosed
	}
	s, ok := m.md.(core.StateSnapshotter)
	if !ok {
		return fmt.Errorf("stream: solver %s does not support checkpointing", m.md.Name())
	}
	dec.Expect("multiengine")
	offered := dec.Uvarint()
	delivered := dec.Uvarint()
	lat := core.DecodeHistogram(dec)
	if err := dec.Err(); err != nil {
		return err
	}
	if err := s.RestoreState(dec); err != nil {
		return err
	}
	m.offered, m.delivered, m.offerLatency = offered, delivered, lat
	m.timelines = make(map[int32][]*core.Post)
	return nil
}

// quiesce brings the parallel engine to a consistent cut and returns a
// release function that resumes ingestion. The protocol:
//
//  1. Take e.mu. New Offers/OfferBatches block at the ingest boundary; no
//     further jobs can be enqueued.
//  2. Send each worker a barrier job. The sends can block if a queue is full
//     but always terminate, for the same reason Offer's blocking mode does:
//     workers never take e.mu, so they keep draining.
//  3. Wait for every barrier to close. Queues are FIFO, so a closed barrier
//     proves that worker has decided every job accepted before the cut, and
//     the close is the happens-before edge publishing the worker's own
//     writes (lastSeq, solver state) to the quiescing goroutine.
//
// When quiesce returns, every ticket issued before the cut is resolved,
// worker queues are empty, and workers are parked on an empty channel. The
// caller reads or writes worker state — taking each worker's mu is still
// required for fields snapshotted concurrently by Counters/WorkerSnapshots —
// and then calls release, which drops e.mu and lets producers continue.
// shardSnapshotters asserts every worker's solver supports checkpointing,
// refusing descriptively otherwise (adaptive-wrapped shards deliberately do
// not — see core.AdaptiveMultiUser).
func (e *ParallelMultiEngine) shardSnapshotters() ([]core.StateSnapshotter, error) {
	out := make([]core.StateSnapshotter, len(e.workers))
	for i, w := range e.workers {
		w.mu.Lock()
		s, ok := w.md.(core.StateSnapshotter)
		name := w.md.Name()
		w.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("stream: solver %s does not support checkpointing", name)
		}
		out[i] = s
	}
	return out, nil
}

func (e *ParallelMultiEngine) quiesce() (release func(), err error) {
	e.mu.Lock()
	if e.state != stateOpen {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	barriers := make([]chan struct{}, len(e.workers))
	for i, w := range e.workers {
		barriers[i] = make(chan struct{})
		w.ch <- parallelJob{barrier: barriers[i]}
	}
	for _, b := range barriers {
		<-b
	}
	//lint:ignore lockorder quiesce transfers e.mu ownership to the caller via the returned release func; SnapshotState defers it
	return e.mu.Unlock, nil
}

// SnapshotState quiesces the engine and writes a consistent cut: the global
// sequence watermark, then each worker's shard in index order (sequence
// watermark, queue-wait histogram, shard solver state). Ingestion resumes
// when SnapshotState returns; tickets issued before the call are all
// resolved at the cut, so the snapshot is exactly "everything offered so
// far".
func (e *ParallelMultiEngine) SnapshotState(enc *checkpoint.Encoder) error {
	snaps, err := e.shardSnapshotters()
	if err != nil {
		return err
	}
	release, err := e.quiesce()
	if err != nil {
		return err
	}
	defer release()
	enc.String("parallelengine")
	enc.Uvarint(uint64(len(e.workers)))
	//lint:ignore guardcheck quiesce() returns with e.mu held; release() is the deferred unlock
	enc.Uvarint(e.seq)
	for wi, w := range e.workers {
		w.mu.Lock()
		enc.Uvarint(w.lastSeq)
		core.EncodeHistogram(enc, &w.queueWait)
		err := snaps[wi].SnapshotState(enc)
		w.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return enc.Err()
}

// RestoreState replaces the engine's decision state from a snapshot. The
// engine must be freshly constructed with the same shape (algorithm, graph,
// subscriptions, worker count) — the shard count is validated here, shard
// contents by the solvers underneath. On error the engine must be discarded.
func (e *ParallelMultiEngine) RestoreState(dec *checkpoint.Decoder) error {
	snaps, err := e.shardSnapshotters()
	if err != nil {
		return err
	}
	release, err := e.quiesce()
	if err != nil {
		return err
	}
	defer release()
	dec.Expect("parallelengine")
	if n := dec.Len("workers", checkpoint.MaxElems); dec.Err() == nil && n != len(e.workers) {
		dec.Failf("snapshot has %d worker shards, engine has %d", n, len(e.workers))
	}
	seq := dec.Uvarint()
	if err := dec.Err(); err != nil {
		return err
	}
	for wi, w := range e.workers {
		lastSeq := dec.Uvarint()
		wait := core.DecodeHistogram(dec)
		if dec.Err() == nil && lastSeq > seq {
			dec.Failf("worker %d watermark %d exceeds global sequence %d", wi, lastSeq, seq)
		}
		if err := dec.Err(); err != nil {
			return err
		}
		w.mu.Lock()
		err := snaps[wi].RestoreState(dec)
		if err == nil {
			w.queueWait = wait
		}
		w.mu.Unlock()
		if err != nil {
			return err
		}
		// lastSeq is worker-owned; writing here is safe because the worker is
		// parked on its empty queue (quiesce) and the next channel send
		// publishes the write to it.
		w.lastSeq = lastSeq
	}
	//lint:ignore guardcheck quiesce() returns with e.mu held; release() is the deferred unlock
	e.seq = seq
	return dec.Err()
}
