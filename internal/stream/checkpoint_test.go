package stream

import (
	"bytes"
	"slices"
	"sort"
	"sync"
	"testing"

	"firehose/internal/checkpoint"
	"firehose/internal/core"
)

// snapEngine serializes one engine into a complete checkpoint stream.
func snapEngine(t *testing.T, s core.StateSnapshotter) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := checkpoint.NewEncoder(&buf, "stream.test")
	if err := s.SnapshotState(enc); err != nil {
		t.Fatalf("SnapshotState: %v", err)
	}
	if err := enc.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return buf.Bytes()
}

func restoreEngine(s core.StateSnapshotter, raw []byte) error {
	dec, err := checkpoint.NewDecoder(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	if err := s.RestoreState(dec); err != nil {
		return err
	}
	return dec.Finish()
}

func sortedUsers(u []int32) []int32 {
	u = slices.Clone(u)
	sort.Slice(u, func(a, b int) bool { return u[a] < u[b] })
	return u
}

// TestParallelSnapshotEquivalence is the tentpole correctness bar at the
// stream layer: snapshot a parallel engine at a prefix boundary, restore
// into a fresh engine, and require the suffix delivery sequence to be
// identical to the uninterrupted run — at 1 worker and at 4.
func TestParallelSnapshotEquivalence(t *testing.T) {
	g, subs, posts := parallelScenario(t, 31, 220)
	th := core.Thresholds{LambdaC: 18, LambdaT: 30 * 60 * 1000, LambdaA: 0.7}
	for _, workers := range []int{1, 4} {
		for _, alg := range []core.Algorithm{core.AlgUniBin, core.AlgNeighborBin, core.AlgCliqueBin} {
			t.Run(alg.String(), func(t *testing.T) {
				cont, err := NewParallelMultiEngine(alg, g, subs, th, workers)
				if err != nil {
					t.Fatal(err)
				}
				restored, err := NewParallelMultiEngine(alg, g, subs, th, workers)
				if err != nil {
					t.Fatal(err)
				}
				cut := len(posts) / 2
				for _, p := range posts[:cut] {
					if _, err := cont.Offer(p); err != nil {
						t.Fatal(err)
					}
				}
				// No explicit drain needed: SnapshotState quiesces.
				raw := snapEngine(t, cont)
				if err := restoreEngine(restored, raw); err != nil {
					t.Fatalf("workers=%d: restore: %v", workers, err)
				}
				for i, p := range posts[cut:] {
					a, err := cont.Offer(p)
					if err != nil {
						t.Fatal(err)
					}
					b, err := restored.Offer(p)
					if err != nil {
						t.Fatal(err)
					}
					if au, bu := sortedUsers(a.Users()), sortedUsers(b.Users()); !slices.Equal(au, bu) {
						t.Fatalf("workers=%d: suffix post %d diverged: uninterrupted=%v restored=%v", workers, i, au, bu)
					}
					if a.Seq() != b.Seq() {
						t.Fatalf("workers=%d: sequence watermark diverged: %d vs %d", workers, a.Seq(), b.Seq())
					}
				}
				cont.Close()
				restored.Close()
				ac, bc := cont.Counters(), restored.Counters()
				if ac.Accepted != bc.Accepted || ac.Rejected != bc.Rejected || ac.Comparisons != bc.Comparisons {
					t.Fatalf("workers=%d: counters diverged: %v vs %v", workers, ac, bc)
				}
			})
		}
	}
}

// TestParallelSnapshotDuringConcurrentIngest: taking a snapshot while
// producers hammer the engine must neither race (run under -race) nor
// deadlock, and the stream it produces must restore cleanly.
func TestParallelSnapshotDuringConcurrentIngest(t *testing.T) {
	g, subs, posts := parallelScenario(t, 32, 150)
	th := core.Thresholds{LambdaC: 18, LambdaT: 30 * 60 * 1000, LambdaA: 0.7}
	e, err := NewParallelMultiEngine(core.AlgUniBin, g, subs, th, 4)
	if err != nil {
		t.Fatal(err)
	}
	// One producer preserves the global timestamp order the engine requires;
	// snapshots race against it from another goroutine.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range posts {
			if _, err := e.Offer(p); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var snaps [][]byte
	for i := 0; i < 8; i++ {
		snaps = append(snaps, snapEngine(t, e))
	}
	wg.Wait()
	for i, raw := range snaps {
		fresh, err := NewParallelMultiEngine(core.AlgUniBin, g, subs, th, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := restoreEngine(fresh, raw); err != nil {
			t.Fatalf("snapshot %d did not restore: %v", i, err)
		}
		fresh.Close()
	}
	e.Close()
}

// TestParallelSnapshotAfterCloseErrors: the quiesce protocol needs live
// workers; a closed engine reports ErrClosed instead of hanging.
func TestParallelSnapshotAfterCloseErrors(t *testing.T) {
	g, subs, _ := parallelScenario(t, 33, 60)
	th := core.Thresholds{LambdaC: 18, LambdaT: 1000, LambdaA: 0.7}
	e, err := NewParallelMultiEngine(core.AlgUniBin, g, subs, th, 2)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	var buf bytes.Buffer
	enc := checkpoint.NewEncoder(&buf, "stream.test")
	if err := e.SnapshotState(enc); err != ErrClosed {
		t.Fatalf("SnapshotState on closed engine: %v", err)
	}
}

// TestParallelRestoreWorkerCountMismatch: restoring a 4-worker snapshot into
// a 2-worker engine must fail descriptively — shard solvers are per-worker
// and cannot be re-split.
func TestParallelRestoreWorkerCountMismatch(t *testing.T) {
	g, subs, posts := parallelScenario(t, 34, 100)
	th := core.Thresholds{LambdaC: 18, LambdaT: 30 * 60 * 1000, LambdaA: 0.7}
	e4, err := NewParallelMultiEngine(core.AlgUniBin, g, subs, th, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range posts[:50] {
		if _, err := e4.Offer(p); err != nil {
			t.Fatal(err)
		}
	}
	raw := snapEngine(t, e4)
	e4.Close()
	e2, err := NewParallelMultiEngine(core.AlgUniBin, g, subs, th, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if err := restoreEngine(e2, raw); err == nil {
		t.Fatal("restore across worker counts succeeded")
	}
}

// TestMultiEngineSnapshotEquivalence: the sequential MultiEngine carries its
// accounting and solver state across a snapshot/restore, and the restored
// engine's suffix decisions match; timelines restart empty by design.
func TestMultiEngineSnapshotEquivalence(t *testing.T) {
	g, subs, posts := parallelScenario(t, 35, 150)
	th := core.Thresholds{LambdaC: 18, LambdaT: 30 * 60 * 1000, LambdaA: 0.7}
	mk := func() *MultiEngine {
		md, err := core.NewSharedMultiUser(core.AlgNeighborBin, g, subs, th)
		if err != nil {
			t.Fatal(err)
		}
		return NewMultiEngine(md)
	}
	cont, restored := mk(), mk()
	cut := len(posts) / 2
	for _, p := range posts[:cut] {
		if _, err := cont.Offer(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := restoreEngine(restored, snapEngine(t, cont)); err != nil {
		t.Fatal(err)
	}
	for i, p := range posts[cut:] {
		a, err := cont.Offer(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Offer(p)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(a, b) {
			t.Fatalf("suffix post %d diverged: %v vs %v", i, a, b)
		}
	}
	as, bs := cont.Snapshot(), restored.Snapshot()
	if as.Offered != bs.Offered || as.Delivered != bs.Delivered {
		t.Fatalf("accounting diverged: %d/%d vs %d/%d", as.Offered, as.Delivered, bs.Offered, bs.Delivered)
	}
	// Restored timelines contain only post-restore deliveries.
	for u := range subs {
		tl := restored.Timeline(int32(u))
		for _, p := range tl {
			if p.ID <= posts[cut-1].ID {
				t.Fatalf("restored timeline of user %d contains pre-snapshot post %d", u, p.ID)
			}
		}
	}
}
