package stream

import (
	"slices"
	"sync"
	"time"

	"firehose/internal/core"
	"firehose/internal/metrics"
)

// Engine runs a single-user diversifier over a live feed. It serializes
// Offer calls (the algorithms are inherently sequential — each decision
// depends on all earlier ones) and fans accepted posts out to subscribers,
// so many goroutines can ingest and many consumers can observe one timeline.
type Engine struct {
	// mu guards: div, subs, done, total, offerLatency
	mu    sync.Mutex
	div   core.Diversifier
	subs  []chan *core.Post
	done  bool
	total uint64
	// offerLatency observes the full Offer critical section — decision plus
	// subscriber fan-out — so a consumer that stops draining its channel
	// shows up here as rising engine latency, distinct from the pure
	// decision cost in the diversifier's own Counters.Decisions.
	offerLatency metrics.Histogram
}

// EngineSnapshot is a consistent view of an Engine's instrumentation.
type EngineSnapshot struct {
	// Offered is the total number of posts pushed through Offer.
	Offered uint64
	// Subscribers is the current subscriber-channel count.
	Subscribers int
	// OfferLatency is the end-to-end Offer latency (decision + fan-out).
	OfferLatency metrics.Histogram
	// Counters snapshots the diversifier's cost counters, including the
	// pure decision latency histogram.
	Counters metrics.Counters
}

// NewEngine wraps a diversifier.
func NewEngine(div core.Diversifier) *Engine {
	return &Engine{div: div}
}

// Offer pushes one post through the diversifier; it reports whether the post
// was emitted and delivers emitted posts to all subscribers. Posts must
// still arrive in global time order across callers.
func (e *Engine) Offer(p *core.Post) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return false, ErrClosed
	}
	defer e.offerLatency.ObserveSince(time.Now())
	e.total++
	if !e.div.Offer(p) {
		return false, nil
	}
	for _, ch := range e.subs {
		ch <- p
	}
	return true, nil
}

// Subscribe returns a channel receiving every emitted post from now on. The
// channel is buffered; a consumer that stops reading will eventually block
// ingestion, which is the backpressure a timeline service wants.
func (e *Engine) Subscribe(buffer int) <-chan *core.Post {
	e.mu.Lock()
	defer e.mu.Unlock()
	ch := make(chan *core.Post, buffer)
	e.subs = append(e.subs, ch)
	return ch
}

// Close closes all subscriber channels; further Offers fail.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return
	}
	e.done = true
	for _, ch := range e.subs {
		close(ch)
	}
}

// Counters snapshots the underlying diversifier's counters.
func (e *Engine) Counters() metrics.Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return *e.div.Counters()
}

// Snapshot returns a consistent view of the engine's instrumentation, taken
// under the decision lock so it never interleaves with an Offer.
func (e *Engine) Snapshot() EngineSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EngineSnapshot{
		Offered:      e.total,
		Subscribers:  len(e.subs),
		OfferLatency: e.offerLatency,
		Counters:     *e.div.Counters(),
	}
}

// Swap atomically replaces or mutates the diversifier between decisions —
// the safe point for applying a refreshed author graph (the paper's
// periodic similarity recomputation). The function receives the current
// diversifier and returns the one to use next; returning the same instance
// (e.g. after calling UniBin.SetGraph on it) keeps all window state, while
// returning a fresh instance resets it, which can transiently re-admit
// duplicates for up to λt.
func (e *Engine) Swap(f func(core.Diversifier) core.Diversifier) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.div = f(e.div)
}

// Consume drains a source through the engine, returning the emitted posts.
func (e *Engine) Consume(src Source) ([]*core.Post, error) {
	var out []*core.Post
	for {
		p, ok := src.Next()
		if !ok {
			return out, nil
		}
		emitted, err := e.Offer(p)
		if err != nil {
			return out, err
		}
		if emitted {
			out = append(out, p)
		}
	}
}

// MultiEngine runs an M-SPSD solver over a live feed, delivering each
// accepted post to the per-user timelines. Like Engine it serializes the
// decision step behind a mutex.
type MultiEngine struct {
	// mu guards: md, timelines, done, offered, delivered, offerLatency
	mu        sync.Mutex
	md        core.MultiDiversifier
	timelines map[int32][]*core.Post
	done      bool
	offered   uint64
	delivered uint64
	// offerLatency observes the full routed decision (all affected users'
	// instances) plus timeline bookkeeping.
	offerLatency metrics.Histogram
}

// MultiEngineSnapshot is a consistent view of a MultiEngine's
// instrumentation.
type MultiEngineSnapshot struct {
	// Offered counts posts pushed through Offer; Delivered counts timeline
	// appends (one post delivered to k users counts k).
	Offered, Delivered uint64
	// OfferLatency is the end-to-end Offer latency.
	OfferLatency metrics.Histogram
	// Counters is the merged cost-counter snapshot.
	Counters metrics.Counters
}

// NewMultiEngine wraps a multi-user diversifier.
func NewMultiEngine(md core.MultiDiversifier) *MultiEngine {
	return &MultiEngine{md: md, timelines: make(map[int32][]*core.Post)}
}

// Offer routes a post and returns the users it was delivered to. The
// returned slice is the caller's to keep: the engine copies it out of the
// solver's scratch storage (see core.MultiDiversifier's aliasing contract)
// before releasing the decision lock.
func (m *MultiEngine) Offer(p *core.Post) ([]int32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return nil, ErrClosed
	}
	defer m.offerLatency.ObserveSince(time.Now())
	m.offered++
	users := slices.Clone(m.md.Offer(p))
	m.delivered += uint64(len(users))
	for _, u := range users {
		m.timelines[u] = append(m.timelines[u], p)
	}
	return users, nil
}

// OfferBatch routes a batch of posts under a single lock acquisition,
// returning per-post deliveries in batch order. Posts must be time-ordered
// within the batch (the batch order is the stream order). It exists so batch
// ingest amortizes the lock the way the parallel engine's OfferBatch
// amortizes channel sends. Each post still gets its own offerLatency
// observation, so batch and single ingestion feed the same distribution.
func (m *MultiEngine) OfferBatch(posts []*core.Post) ([][]int32, error) {
	out := make([][]int32, len(posts))
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return nil, ErrClosed
	}
	for i, p := range posts {
		start := time.Now()
		m.offered++
		users := slices.Clone(m.md.Offer(p))
		m.delivered += uint64(len(users))
		for _, u := range users {
			m.timelines[u] = append(m.timelines[u], p)
		}
		m.offerLatency.ObserveSince(start)
		out[i] = users
	}
	return out, nil
}

// Name returns the backing solver's algorithm name (e.g. "S_UniBin").
func (m *MultiEngine) Name() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.md.Name()
}

// Snapshot returns a consistent view of the engine's instrumentation.
func (m *MultiEngine) Snapshot() MultiEngineSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MultiEngineSnapshot{
		Offered:      m.offered,
		Delivered:    m.delivered,
		OfferLatency: m.offerLatency,
		Counters:     *m.md.Counters(),
	}
}

// Timeline returns a copy of user u's accumulated timeline.
func (m *MultiEngine) Timeline(u int32) []*core.Post {
	m.mu.Lock()
	defer m.mu.Unlock()
	tl := m.timelines[u]
	out := make([]*core.Post, len(tl))
	copy(out, tl)
	return out
}

// Swap atomically replaces or mutates the solver between decisions — the
// multi-user counterpart of Engine.Swap, and the safe point for graph churn:
// call the solver's SetGraph inside f after a followee change has been
// folded into a refreshed author graph (authorsim.MutableVectors +
// Graph.WithUpdatedAuthor). Returning the same instance keeps all window
// state and timelines; returning a fresh instance keeps the timelines (they
// are delivered history, not solver state) but resets the decision windows,
// which can transiently re-admit duplicates for up to λt.
func (m *MultiEngine) Swap(f func(core.MultiDiversifier) core.MultiDiversifier) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.md = f(m.md)
}

// AdaptiveStates returns the per-user controller states when the solver is
// adaptive-wrapped (core.AdaptiveMultiUser), nil otherwise — the nil/empty
// distinction is how callers (the HTTP metrics surface) detect adaptivity.
func (m *MultiEngine) AdaptiveStates() []core.AdaptiveUserState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if a, ok := m.md.(*core.AdaptiveMultiUser); ok {
		return a.UserStates()
	}
	return nil
}

// Suppressed returns the adaptive controller's total withheld-delivery count,
// 0 when the solver is not adaptive-wrapped.
func (m *MultiEngine) Suppressed() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if a, ok := m.md.(*core.AdaptiveMultiUser); ok {
		return a.Suppressed()
	}
	return 0
}

// Close stops the engine.
func (m *MultiEngine) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done = true
}

// Counters snapshots the merged counters of the underlying solver.
func (m *MultiEngine) Counters() metrics.Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return *m.md.Counters()
}
