package stream_test

import (
	"fmt"

	"firehose/internal/authorsim"
	"firehose/internal/core"
	"firehose/internal/stream"
)

// ExampleMerge shows the fan-in a subscription timeline performs: per-author
// feeds merge into one time-ordered stream.
func ExampleMerge() {
	feedA, _ := stream.NewSliceSource([]*core.Post{
		core.NewPost(1, 0, 100, "first story breaks"),
		core.NewPost(3, 0, 300, "first story follow-up"),
	})
	feedB, _ := stream.NewSliceSource([]*core.Post{
		core.NewPost(2, 1, 200, "unrelated second story"),
	})
	for _, p := range stream.Drain(stream.NewMerge(feedA, feedB)) {
		fmt.Println(p.ID, p.Text)
	}
	// Output:
	// 1 first story breaks
	// 2 unrelated second story
	// 3 first story follow-up
}

// ExampleEngine shows the concurrent facade over a diversifier: offers are
// serialized, subscribers receive the emitted sub-stream.
func ExampleEngine() {
	g := authorsim.NewGraph(2, []authorsim.SimPair{{A: 0, B: 1}}, 0.7)
	th := core.Thresholds{LambdaC: 18, LambdaT: 60_000, LambdaA: 0.7}
	e := stream.NewEngine(core.NewUniBin(g, th))
	timeline := e.Subscribe(8)

	e.Offer(core.NewPost(1, 0, 0, "ferry sinks off coast http://t.co/a"))
	e.Offer(core.NewPost(2, 1, 1000, "ferry sinks off coast http://t.co/b")) // pruned
	e.Close()

	for p := range timeline {
		fmt.Println(p.ID)
	}
	c := e.Counters()
	fmt.Println("pruned:", c.Rejected)
	// Output:
	// 1
	// pruned: 1
}
