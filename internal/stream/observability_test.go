package stream

import (
	"testing"

	"firehose/internal/authorsim"
	"firehose/internal/core"
	"firehose/internal/metrics"
)

func obsThresholds() core.Thresholds {
	return core.Thresholds{LambdaC: 18, LambdaT: 30 * 60 * 1000, LambdaA: 0.7}
}

func TestEngineSnapshot(t *testing.T) {
	g := authorsim.NewGraph(2, []authorsim.SimPair{{A: 0, B: 1}}, 0.7)
	div, err := core.NewDiversifier(core.AlgUniBin, g, []int32{0, 1}, obsThresholds())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(div)
	defer e.Close()
	sub := e.Subscribe(8)
	_ = sub

	texts := []string{
		"ferry sinks off southern coast rescue underway",
		"ferry sinks off southern coast rescue underway", // duplicate, pruned
		"alibaba files landmark technology listing today",
	}
	for i, txt := range texts {
		if _, err := e.Offer(core.NewPost(uint64(i+1), 0, int64(1000*(i+1)), txt)); err != nil {
			t.Fatal(err)
		}
	}

	snap := e.Snapshot()
	if snap.Offered != 3 {
		t.Fatalf("Offered = %d, want 3", snap.Offered)
	}
	if snap.Subscribers != 1 {
		t.Fatalf("Subscribers = %d, want 1", snap.Subscribers)
	}
	if snap.OfferLatency.Count != 3 {
		t.Fatalf("OfferLatency.Count = %d, want 3", snap.OfferLatency.Count)
	}
	if snap.Counters.Decisions.Count != 3 {
		t.Fatalf("Decisions.Count = %d, want 3", snap.Counters.Decisions.Count)
	}
	if snap.Counters.Accepted != 2 || snap.Counters.Rejected != 1 {
		t.Fatalf("accept/reject = %d/%d, want 2/1", snap.Counters.Accepted, snap.Counters.Rejected)
	}
}

func TestMultiEngineSnapshot(t *testing.T) {
	g := authorsim.NewGraph(3, []authorsim.SimPair{{A: 0, B: 1}}, 0.7)
	md, err := core.NewSharedMultiUser(core.AlgUniBin, g, [][]int32{{0, 1}, {2}}, obsThresholds())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMultiEngine(md)
	defer m.Close()
	if m.Name() != "S_UniBin" {
		t.Fatalf("Name = %q", m.Name())
	}
	if _, err := m.Offer(core.NewPost(1, 0, 1000, "ferry sinks off coast tonight")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Offer(core.NewPost(2, 2, 2000, "ferry sinks off coast tonight")); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.Offered != 2 || snap.Delivered != 2 {
		t.Fatalf("Offered/Delivered = %d/%d, want 2/2", snap.Offered, snap.Delivered)
	}
	if snap.OfferLatency.Count != 2 {
		t.Fatalf("OfferLatency.Count = %d", snap.OfferLatency.Count)
	}
	if snap.Counters.Decisions.Count == 0 {
		t.Fatal("Decisions histogram empty")
	}
}

// TestWorkerSnapshots checks the per-worker instrumentation of the parallel
// engine: the merged per-worker counters must equal the engine totals, queue
// waits must account every decided job, and per-worker accept/reject splits
// make shard imbalance visible.
func TestWorkerSnapshots(t *testing.T) {
	// Two disjoint components {0,1} and {2,3} over 2 workers: one component
	// each.
	g := authorsim.NewGraph(4, []authorsim.SimPair{{A: 0, B: 1}, {A: 2, B: 3}}, 0.7)
	subs := [][]int32{{0, 1}, {2, 3}}
	e, err := NewParallelMultiEngine(core.AlgUniBin, g, subs, obsThresholds(), 2)
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{
		"ferry sinks off southern coast rescue underway",
		"alibaba files landmark technology listing today",
		"wildfire spreads across northern hills evacuations",
		"senate passes budget amendment after marathon session",
	}
	total := 0
	for round := 0; round < 5; round++ {
		for a := int32(0); a < 4; a++ {
			txt := texts[a]
			tk, err := e.Offer(core.NewPost(uint64(total+1), a, int64(1000*(total+1)), txt))
			if err != nil {
				t.Fatal(err)
			}
			tk.Users()
			total++
		}
	}
	e.Close()

	snaps := e.WorkerSnapshots()
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	var mergedCounters []metrics.Counters
	var mergedWaits []metrics.Histogram
	for i, s := range snaps {
		if s.Worker != i {
			t.Fatalf("snapshot %d has Worker %d", i, s.Worker)
		}
		if s.QueueLen != 0 {
			t.Fatalf("worker %d queue not drained after Close: %d", i, s.QueueLen)
		}
		if s.QueueCap != DefaultQueueDepth {
			t.Fatalf("worker %d QueueCap = %d", i, s.QueueCap)
		}
		// Every shard saw half the posts; the duplicates within each shard
		// mean both accepted and rejected are non-zero per worker.
		if s.Counters.Processed() != uint64(total)/2 {
			t.Fatalf("worker %d processed %d, want %d", i, s.Counters.Processed(), total/2)
		}
		if s.Counters.Accepted == 0 || s.Counters.Rejected == 0 {
			t.Fatalf("worker %d accept/reject = %d/%d", i, s.Counters.Accepted, s.Counters.Rejected)
		}
		if s.QueueWait.Count != uint64(total)/2 {
			t.Fatalf("worker %d queue waits %d, want %d", i, s.QueueWait.Count, total/2)
		}
		mergedCounters = append(mergedCounters, s.Counters)
		mergedWaits = append(mergedWaits, s.QueueWait)
	}
	// Per-worker snapshots merge to the engine-level totals — the
	// Counters-style merge discipline.
	sum := metrics.Sum(mergedCounters...)
	engineTotal := e.Counters()
	if sum != engineTotal {
		t.Fatalf("merged worker counters != engine counters\nworkers: %+v\nengine:  %+v", sum, engineTotal)
	}
	if waits := metrics.MergeHistograms(mergedWaits...); waits.Count != uint64(total) {
		t.Fatalf("merged queue waits = %d, want %d", waits.Count, total)
	}
	if e.Name() != "S_UniBin" {
		t.Fatalf("Name = %q", e.Name())
	}
}
