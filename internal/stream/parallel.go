package stream

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"firehose/internal/authorsim"
	"firehose/internal/core"
	"firehose/internal/metrics"
)

// Typed lifecycle and backpressure errors of the parallel engine.
var (
	// ErrClosed is returned by Offer once Close has begun; the engine
	// accepts no further posts but still resolves every ticket it issued.
	ErrClosed = errors.New("stream: engine is closed")
	// ErrQueueFull is returned by Offer in fail-fast mode when the target
	// worker's queue is at capacity. The post was not enqueued; the caller
	// may retry, shed the post, or fall back to a slower path.
	ErrQueueFull = errors.New("stream: worker queue is full")
)

// ParallelOptions configures a ParallelMultiEngine's backpressure behavior.
type ParallelOptions struct {
	// QueueDepth bounds each worker's pending-job queue. 0 selects
	// DefaultQueueDepth; negative is invalid.
	QueueDepth int
	// FailFast makes Offer return ErrQueueFull instead of blocking when the
	// target worker's queue is full. The default (blocking) mode propagates
	// backpressure to producers: a full shard slows ingestion down to the
	// rate the slowest worker sustains.
	FailFast bool
	// Adaptive, when non-nil, wraps every shard's solver in the per-user
	// delivery-rate controller (core.AdaptiveMultiUser). Budgets are
	// accounted per shard: a user whose subscriptions span k shards can
	// receive up to k× the configured budget per window, because each
	// shard's controller sees only the deliveries it decides. That bound is
	// exact for users inside one component (every component lives on one
	// worker) and conservative otherwise. Adaptive engines do not support
	// checkpointing.
	Adaptive *core.AdaptivePolicy
}

// DefaultQueueDepth is the per-worker queue bound used when
// ParallelOptions.QueueDepth is zero.
const DefaultQueueDepth = 256

// ParallelMultiEngine runs M-SPSD across worker goroutines by exploiting the
// independence the paper's Section 5 analysis establishes: posts from
// different connected components of the author similarity graph can never
// cover each other, so each component's decision sequence is independent of
// every other's. The engine shards the *global* graph's components across
// workers; each worker owns a SharedMultiUser instance over the users'
// subscriptions restricted to its shard, preserving per-component arrival
// order (each author maps to exactly one worker) while processing disjoint
// shards concurrently.
//
// Offer returns a ticket immediately; the ticket's Users method joins the
// decision. For every user, the union of deliveries equals the sequential
// SharedMultiUser's — property-tested against it.
//
// The same component-independence argument is applied at process scale by
// internal/shard: a router partitions components across worker *processes*
// the way this engine partitions them across goroutines, and the
// bit-identical-decisions guarantee carries over unchanged. The two splits
// compose — each shard process may itself run a ParallelMultiEngine.
//
// Concurrency contract: Offer, Close and Counters are safe to call from any
// number of goroutines. The ingest boundary serializes routing and tags every
// accepted post with a monotone sequence number, so concurrent producers get
// a well-defined global order and per-component order is preserved; the
// semantic stream order is the sequence order, which means concurrent
// producers must still ensure their posts carry non-decreasing timestamps in
// that order (e.g. by timestamping at the ingest boundary). Close drains all
// in-flight tickets before returning; Offers that lose the race against Close
// return ErrClosed and enqueue nothing.
type ParallelMultiEngine struct {
	workers []*parallelWorker
	// authorWorker maps author id → worker index.
	authorWorker []int32
	wg           sync.WaitGroup
	failFast     bool

	// mu guards: state, seq
	//
	// It also serializes the route-and-enqueue step of Offer so the
	// per-worker queues receive jobs in sequence order even under concurrent
	// producers.
	mu    sync.Mutex
	state lifecycle
	seq   uint64
}

// lifecycle is the engine's state machine: open → closing → closed.
type lifecycle int

const (
	stateOpen lifecycle = iota
	// stateClosing: Close has begun; queues are closed and workers are
	// draining the jobs already accepted. Offer returns ErrClosed.
	stateClosing
	// stateClosed: every worker has exited and every ticket is resolved.
	stateClosed
)

type parallelWorker struct {
	// mu guards: md, queueWait
	//
	// The worker goroutine holds it across Offer (which mutates the
	// per-component counters deep inside the bins) and
	// Counters/WorkerSnapshots hold it while merging, so snapshots never
	// race decisions. ch is written by the ingest boundary and closed by
	// Close; lastSeq and offs are owned by the worker goroutine alone.
	mu sync.Mutex
	// md is the shard solver: a SharedMultiUser over the shard's components,
	// optionally wrapped by the adaptive controller. Interface-typed so the
	// wrapping is invisible to the decision loop; checkpointing asserts
	// core.StateSnapshotter and refuses solvers that lack it.
	md core.MultiDiversifier
	ch chan parallelJob
	lastSeq uint64
	// offs is the worker's reusable batch-offset scratch: offs[i] is the
	// arena position where batch post i's deliveries start. Only subslices
	// of the per-batch arena escape to tickets, never offs itself.
	offs []int32
	// queueWait observes, per job, the time between enqueue at the ingest
	// boundary and dequeue by the worker — the per-worker imbalance signal:
	// a hot shard's queue wait grows while its siblings stay flat.
	queueWait metrics.Histogram
}

// parallelJob is one unit on a worker queue: a single post with its ticket,
// one shard of a batch, or a quiesce barrier (exactly one of ticket/batch/
// barrier is non-nil).
type parallelJob struct {
	post   *core.Post
	ticket *Ticket
	batch  *batchShardJob
	// barrier, when non-nil, is closed by the worker as soon as it dequeues
	// the job. Because the queue is FIFO, the close proves every job enqueued
	// before the barrier has been fully decided, and the close itself is the
	// happens-before edge that lets the quiescing goroutine read worker-owned
	// fields (lastSeq) written by those jobs. See quiesce.
	barrier chan struct{}
	// enqueuedAt is stamped at the ingest boundary; the worker's dequeue
	// time minus this is the job's queue wait. A batch shard counts as one
	// observation — the wait is a property of the queue slot, not the posts.
	enqueuedAt time.Time
}

// batchShardJob is the slice of one OfferBatch call routed to one worker:
// the shard's posts in batch order, their positions in the batch, and the
// ticket slot array to resolve into.
type batchShardJob struct {
	posts []*core.Post
	pos   []int32 // posts[i] is batch element pos[i]
	// firstSeq/lastSeq are the ingest sequence numbers of posts[0] and
	// posts[len-1]; per-shard sequences are monotone because OfferBatch
	// assigns sequences in batch order and sub-batches preserve it.
	firstSeq, lastSeq uint64
	ticket            *BatchTicket
	done              chan struct{}
}

// WorkerSnapshot is a consistent view of one worker's instrumentation, for
// spotting per-shard imbalance (Gao et al. observe that per-worker load skew
// is the first thing a parallel stream clusterer must expose).
type WorkerSnapshot struct {
	// Worker is the shard index.
	Worker int
	// QueueLen and QueueCap are the pending-job count and queue bound at
	// snapshot time.
	QueueLen, QueueCap int
	// QueueWait is the distribution of enqueue→dequeue waits on this shard.
	QueueWait metrics.Histogram
	// Counters is this worker's cost-counter snapshot (accept/reject split,
	// comparisons, decision latency), taken under the worker's decision
	// lock.
	Counters metrics.Counters
}

// Ticket is a pending decision handle.
type Ticket struct {
	seq   uint64
	done  chan struct{}
	users []int32
}

// Users blocks until the decision is made and returns the delivered users.
func (t *Ticket) Users() []int32 {
	<-t.done
	return t.users
}

// Seq returns the monotone sequence number the ingest boundary assigned to
// this post — the engine's global arrival order, shared across all workers.
func (t *Ticket) Seq() uint64 { return t.seq }

// BatchTicket is the pending decision handle of OfferBatch: one ticket for
// the whole batch, resolved shard by shard as workers finish their slices.
type BatchTicket struct {
	seqBase uint64
	// users[i] is batch post i's delivery list; nil for undelivered posts
	// and for posts whose author is outside the graph. Workers write
	// disjoint indices and the pending channels publish the writes.
	users   [][]int32
	pending []chan struct{}
}

// Users blocks until every post of the batch is decided and returns the
// per-post delivered users, indexed by batch position. The returned slices
// are the caller's to keep. Safe to call from multiple goroutines.
func (bt *BatchTicket) Users() [][]int32 {
	for _, ch := range bt.pending {
		<-ch
	}
	return bt.users
}

// SeqBase returns the ingest sequence number of the batch's first post;
// post i of the batch has sequence SeqBase()+i. A batch ingested after a
// single Offer (or another batch) has a strictly larger SeqBase.
func (bt *BatchTicket) SeqBase() uint64 { return bt.seqBase }

// Len returns the number of posts in the batch.
func (bt *BatchTicket) Len() int { return len(bt.users) }

// NewParallelMultiEngine shards the components of g across `workers`
// goroutines with default options (queue depth DefaultQueueDepth, blocking
// backpressure). See NewParallelMultiEngineOpts.
func NewParallelMultiEngine(alg core.Algorithm, g *authorsim.Graph, subscriptions [][]int32, th core.Thresholds, workers int) (*ParallelMultiEngine, error) {
	return NewParallelMultiEngineOpts(alg, g, subscriptions, th, workers, ParallelOptions{})
}

// NewParallelMultiEngineOpts shards the components of g across `workers`
// goroutines and builds one shared multi-user solver per shard. Components
// are assigned round-robin by their smallest author, balancing load for
// homogeneous communities. subscriptions[u] lists user u's authors.
func NewParallelMultiEngineOpts(alg core.Algorithm, g *authorsim.Graph, subscriptions [][]int32, th core.Thresholds, workers int, opts ParallelOptions) (*ParallelMultiEngine, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("stream: workers must be positive, got %d", workers)
	}
	if opts.QueueDepth < 0 {
		return nil, fmt.Errorf("stream: queue depth must be non-negative, got %d", opts.QueueDepth)
	}
	depth := opts.QueueDepth
	if depth == 0 {
		depth = DefaultQueueDepth
	}
	// Global components partition the author universe; a user's own
	// components are always subsets of global ones, so any two authors that
	// can ever share a decision land in the same global component — and
	// therefore on the same worker.
	all := make([]int32, g.NumAuthors())
	for i := range all {
		all[i] = int32(i)
	}
	comps := g.InducedComponents(all)

	e := &ParallelMultiEngine{
		workers:      make([]*parallelWorker, workers),
		authorWorker: make([]int32, g.NumAuthors()),
		failFast:     opts.FailFast,
	}
	// Assign components round-robin; record author → worker.
	shardAuthors := make([]map[int32]bool, workers)
	for i := range shardAuthors {
		shardAuthors[i] = make(map[int32]bool)
	}
	for ci, comp := range comps {
		w := ci % workers
		for _, a := range comp {
			e.authorWorker[a] = int32(w)
			shardAuthors[w][a] = true
		}
	}
	// Restrict each user's subscriptions to each shard.
	for w := 0; w < workers; w++ {
		shardSubs := make([][]int32, len(subscriptions))
		for u, subs := range subscriptions {
			for _, a := range subs {
				if shardAuthors[w][a] {
					shardSubs[u] = append(shardSubs[u], a)
				}
			}
		}
		var md core.MultiDiversifier
		md, err := core.NewSharedMultiUser(alg, g, shardSubs, th)
		if err != nil {
			return nil, err
		}
		if opts.Adaptive != nil {
			md, err = core.NewAdaptiveMultiUser(md, g, th, *opts.Adaptive)
			if err != nil {
				return nil, err
			}
		}
		e.workers[w] = &parallelWorker{md: md, ch: make(chan parallelJob, depth)}
	}
	for _, w := range e.workers {
		e.wg.Add(1)
		go func(w *parallelWorker) {
			defer e.wg.Done()
			for job := range w.ch {
				if job.barrier != nil {
					// Quiesce checkpoint: everything enqueued before this
					// job has been decided. No queueWait observation — a
					// barrier is not ingest work.
					close(job.barrier)
					continue
				}
				if job.batch != nil {
					w.runBatch(job)
					continue
				}
				// The ingest boundary serializes enqueues in sequence order,
				// so a non-monotone sequence here is an engine bug, not a
				// caller error.
				if job.ticket.seq <= w.lastSeq {
					panic(fmt.Sprintf("stream: worker received seq %d after %d", job.ticket.seq, w.lastSeq))
				}
				w.lastSeq = job.ticket.seq
				w.mu.Lock()
				w.queueWait.ObserveSince(job.enqueuedAt)
				// Detach from the solver's scratch buffer: the ticket outlives
				// the next decision on this worker.
				users := slices.Clone(w.md.Offer(job.post))
				w.mu.Unlock()
				job.ticket.users = users
				close(job.ticket.done)
			}
		}(w)
	}
	return e, nil
}

// runBatch decides one shard of a batch. Deliveries are packed into a single
// per-shard arena slice — one allocation per shard instead of one per
// delivered post — and the ticket's per-post slots receive subslices of it.
func (w *parallelWorker) runBatch(job parallelJob) {
	b := job.batch
	if b.firstSeq <= w.lastSeq {
		panic(fmt.Sprintf("stream: worker received batch seq %d after %d", b.firstSeq, w.lastSeq))
	}
	w.lastSeq = b.lastSeq
	w.mu.Lock()
	w.queueWait.ObserveSince(job.enqueuedAt)
	offs := append(w.offs[:0], 0)
	var arena []int32
	for _, p := range b.posts {
		arena = append(arena, w.md.Offer(p)...)
		offs = append(offs, int32(len(arena)))
	}
	w.offs = offs
	w.mu.Unlock()
	// arena is append-grown, so earlier subslices must only be taken now,
	// after its backing array has stopped moving.
	for i, pos := range b.pos {
		// Full slice expressions cap each result at its own region so a
		// caller appending to one delivery list cannot clobber the next.
		if users := arena[offs[i]:offs[i+1]:offs[i+1]]; len(users) > 0 {
			b.ticket.users[pos] = users
		}
	}
	close(b.done)
}

// Offer routes the post to its component's worker and returns a ticket. It is
// safe for concurrent use; the ingest boundary serializes routing, assigns
// the post a monotone sequence number (Ticket.Seq) and preserves that order
// within every worker queue. The semantic stream order is the sequence order,
// so posts must carry non-decreasing timestamps in it.
//
// When the target worker's queue is full, Offer blocks — backpressure — or,
// in fail-fast mode, returns ErrQueueFull without enqueueing. After Close has
// begun it returns ErrClosed.
func (e *ParallelMultiEngine) Offer(p *core.Post) (*Ticket, error) {
	e.mu.Lock()
	if e.state != stateOpen {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if int(p.Author) >= len(e.authorWorker) || p.Author < 0 {
		e.mu.Unlock()
		// Unknown author: no component, no deliveries.
		t := &Ticket{done: make(chan struct{})}
		close(t.done)
		return t, nil
	}
	w := e.workers[e.authorWorker[p.Author]]
	t := &Ticket{seq: e.seq + 1, done: make(chan struct{})}
	job := parallelJob{post: p, ticket: t, enqueuedAt: time.Now()}
	if e.failFast {
		select {
		case w.ch <- job:
		default:
			e.mu.Unlock()
			return nil, ErrQueueFull
		}
	} else {
		// Blocking send while holding the ingest lock: a full shard stalls
		// all producers until its worker drains a slot. Workers never take
		// this lock, so they always make progress and the send terminates.
		w.ch <- job
	}
	e.seq++
	e.mu.Unlock()
	return t, nil
}

// OfferBatch ingests a slice of posts as one unit: posts are routed to their
// component's workers in batch order with one channel send per touched
// worker — the batch-amortization lever of Gao, Ferrara & Qiu — and the
// returned ticket resolves every post of the batch. Posts must be
// time-ordered within the batch; the batch order is the stream order, and
// every post receives the sequence number SeqBase()+i whether or not its
// author is known (unknown and negative authors are delivered to no one).
//
// Per-component decision order is identical to offering the posts one by
// one: each worker receives its sub-batch in batch order, and cross-shard
// posts are independent by construction (distinct components never cover
// each other), so only the interleaving of independent decisions differs.
//
// Unlike Offer, OfferBatch always applies blocking backpressure, even on a
// fail-fast engine: a batch is never partially shed, because its shards are
// enqueued one worker at a time and cannot be recalled. Callers that need
// fail-fast semantics should size batches below the queue depth or use
// single Offers. After Close has begun it returns ErrClosed.
func (e *ParallelMultiEngine) OfferBatch(posts []*core.Post) (*BatchTicket, error) {
	bt := &BatchTicket{users: make([][]int32, len(posts))}
	if len(posts) == 0 {
		return bt, nil
	}
	// Group the batch per worker. shards is index-aligned with e.workers;
	// only touched workers allocate a shard job.
	shards := make([]*batchShardJob, len(e.workers))
	e.mu.Lock()
	if e.state != stateOpen {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	bt.seqBase = e.seq + 1
	for i, p := range posts {
		seq := bt.seqBase + uint64(i)
		if p.Author < 0 || int(p.Author) >= len(e.authorWorker) {
			continue // no component: bt.users[i] stays nil
		}
		sh := shards[e.authorWorker[p.Author]]
		if sh == nil {
			sh = &batchShardJob{firstSeq: seq, ticket: bt, done: make(chan struct{})}
			shards[e.authorWorker[p.Author]] = sh
			bt.pending = append(bt.pending, sh.done)
		}
		sh.posts = append(sh.posts, p)
		sh.pos = append(sh.pos, int32(i))
		sh.lastSeq = seq
	}
	e.seq += uint64(len(posts))
	now := time.Now()
	for wi, sh := range shards {
		if sh == nil {
			continue
		}
		// Blocking send while holding the ingest lock, like Offer's blocking
		// mode: workers never take e.mu, so each drains independently and
		// every send terminates.
		e.workers[wi].ch <- parallelJob{batch: sh, enqueuedAt: now}
	}
	e.mu.Unlock()
	return bt, nil
}

// Close moves the engine to the closing state (subsequent Offers return
// ErrClosed), closes the worker queues and waits until every already-accepted
// job is decided — all outstanding tickets resolve before Close returns. It
// is idempotent and safe to call concurrently with Offer, Counters and other
// Close calls; every call blocks until the drain completes.
func (e *ParallelMultiEngine) Close() {
	e.mu.Lock()
	if e.state != stateOpen {
		e.mu.Unlock()
		// Another Close started the drain; wait for it to finish so every
		// caller observes the fully-drained engine.
		e.wg.Wait()
		return
	}
	e.state = stateClosing
	for _, w := range e.workers {
		close(w.ch)
	}
	e.mu.Unlock()
	e.wg.Wait()
	e.mu.Lock()
	e.state = stateClosed
	e.mu.Unlock()
}

// Counters merges a consistent snapshot of all workers' counters. It is safe
// to call at any time from any goroutine: each worker's counters are read
// under the lock its decision loop holds, so the snapshot never races a
// decision. Workers are snapshotted one at a time, so counts arriving on
// other workers mid-merge may or may not be included — call after Close for
// the exact final totals.
func (e *ParallelMultiEngine) Counters() metrics.Counters {
	snaps := make([]metrics.Counters, len(e.workers))
	for i, w := range e.workers {
		w.mu.Lock()
		snaps[i] = *w.md.Counters()
		w.mu.Unlock()
	}
	return metrics.Sum(snaps...)
}

// WorkerSnapshots returns a per-worker instrumentation snapshot. Like
// Counters it is safe at any time from any goroutine: each worker's state is
// read under that worker's decision lock, one worker at a time, so a
// snapshot never races a decision but workers are not frozen relative to
// each other — call after Close for exact final values.
func (e *ParallelMultiEngine) WorkerSnapshots() []WorkerSnapshot {
	snaps := make([]WorkerSnapshot, len(e.workers))
	for i, w := range e.workers {
		w.mu.Lock()
		snaps[i] = WorkerSnapshot{
			Worker:    i,
			QueueLen:  len(w.ch),
			QueueCap:  cap(w.ch),
			QueueWait: w.queueWait,
			Counters:  *w.md.Counters(),
		}
		w.mu.Unlock()
	}
	return snaps
}

// Name returns the backing solver's algorithm name (e.g. "S_UniBin"); every
// shard runs the same algorithm.
func (e *ParallelMultiEngine) Name() string {
	w := e.workers[0]
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.md.Name()
}

// AdaptiveStates merges the per-shard adaptive controller states into one
// per-user view, sorted by user id; it returns nil when the engine was built
// without ParallelOptions.Adaptive. Budgets are accounted per shard, so for a
// user spanning several shards the merged entry reports the tightest
// effective thresholds across shards, the summed delivered/suppressed counts,
// and the earliest current window start. Each shard is snapshotted under its
// decision lock, one shard at a time — call after Close for exact totals.
func (e *ParallelMultiEngine) AdaptiveStates() []core.AdaptiveUserState {
	merged := make(map[int32]core.AdaptiveUserState)
	for _, w := range e.workers {
		w.mu.Lock()
		a, ok := w.md.(*core.AdaptiveMultiUser)
		var states []core.AdaptiveUserState
		if ok {
			states = a.UserStates()
		}
		w.mu.Unlock()
		if !ok {
			return nil
		}
		for _, st := range states {
			m, seen := merged[st.User]
			if !seen {
				merged[st.User] = st
				continue
			}
			m.LambdaC = max(m.LambdaC, st.LambdaC)
			m.LambdaT = max(m.LambdaT, st.LambdaT)
			m.WindowStart = min(m.WindowStart, st.WindowStart)
			m.Delivered += st.Delivered
			m.Suppressed += st.Suppressed
			merged[st.User] = m
		}
	}
	out := make([]core.AdaptiveUserState, 0, len(merged))
	for _, st := range merged {
		out = append(out, st)
	}
	slices.SortFunc(out, func(x, y core.AdaptiveUserState) int { return int(x.User - y.User) })
	return out
}

// Suppressed returns the total number of deliveries withheld by the adaptive
// controllers across all shards; 0 for a non-adaptive engine.
func (e *ParallelMultiEngine) Suppressed() uint64 {
	var n uint64
	for _, w := range e.workers {
		w.mu.Lock()
		a, ok := w.md.(*core.AdaptiveMultiUser)
		if ok {
			n += a.Suppressed()
		}
		w.mu.Unlock()
		if !ok {
			return 0
		}
	}
	return n
}

// NumWorkers returns the shard count.
func (e *ParallelMultiEngine) NumWorkers() int { return len(e.workers) }

// QueueDepth returns the per-worker queue bound.
func (e *ParallelMultiEngine) QueueDepth() int { return cap(e.workers[0].ch) }
