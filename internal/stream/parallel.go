package stream

import (
	"fmt"
	"sync"

	"firehose/internal/authorsim"
	"firehose/internal/core"
	"firehose/internal/metrics"
)

// ParallelMultiEngine runs M-SPSD across worker goroutines by exploiting the
// independence the paper's Section 5 analysis establishes: posts from
// different connected components of the author similarity graph can never
// cover each other, so each component's decision sequence is independent of
// every other's. The engine shards the *global* graph's components across
// workers; each worker owns a SharedMultiUser instance over the users'
// subscriptions restricted to its shard, preserving per-component arrival
// order (each author maps to exactly one worker) while processing disjoint
// shards concurrently.
//
// Offer returns a ticket immediately; Wait (or the ticket's Users method)
// joins the decision. For every user, the union of deliveries equals the
// sequential SharedMultiUser's — property-tested against it.
type ParallelMultiEngine struct {
	workers []*parallelWorker
	// authorWorker maps author id → worker index.
	authorWorker []int32
	wg           sync.WaitGroup
	closed       bool
}

type parallelWorker struct {
	md *core.SharedMultiUser
	ch chan parallelJob
}

type parallelJob struct {
	post   *core.Post
	ticket *Ticket
}

// Ticket is a pending decision handle.
type Ticket struct {
	done  chan struct{}
	users []int32
}

// Users blocks until the decision is made and returns the delivered users.
func (t *Ticket) Users() []int32 {
	<-t.done
	return t.users
}

// NewParallelMultiEngine shards the components of g across `workers`
// goroutines and builds one shared multi-user solver per shard. Components
// are assigned round-robin by their smallest author, balancing load for
// homogeneous communities. subscriptions[u] lists user u's authors.
func NewParallelMultiEngine(alg core.Algorithm, g *authorsim.Graph, subscriptions [][]int32, th core.Thresholds, workers int) (*ParallelMultiEngine, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("stream: workers must be positive, got %d", workers)
	}
	// Global components partition the author universe; a user's own
	// components are always subsets of global ones, so any two authors that
	// can ever share a decision land in the same global component — and
	// therefore on the same worker.
	all := make([]int32, g.NumAuthors())
	for i := range all {
		all[i] = int32(i)
	}
	comps := g.InducedComponents(all)

	e := &ParallelMultiEngine{
		workers:      make([]*parallelWorker, workers),
		authorWorker: make([]int32, g.NumAuthors()),
	}
	// Assign components round-robin; record author → worker.
	shardAuthors := make([]map[int32]bool, workers)
	for i := range shardAuthors {
		shardAuthors[i] = make(map[int32]bool)
	}
	for ci, comp := range comps {
		w := ci % workers
		for _, a := range comp {
			e.authorWorker[a] = int32(w)
			shardAuthors[w][a] = true
		}
	}
	// Restrict each user's subscriptions to each shard.
	for w := 0; w < workers; w++ {
		shardSubs := make([][]int32, len(subscriptions))
		for u, subs := range subscriptions {
			for _, a := range subs {
				if shardAuthors[w][a] {
					shardSubs[u] = append(shardSubs[u], a)
				}
			}
		}
		md, err := core.NewSharedMultiUser(alg, g, shardSubs, th)
		if err != nil {
			return nil, err
		}
		e.workers[w] = &parallelWorker{md: md, ch: make(chan parallelJob, 256)}
	}
	for _, w := range e.workers {
		e.wg.Add(1)
		go func(w *parallelWorker) {
			defer e.wg.Done()
			for job := range w.ch {
				job.ticket.users = w.md.Offer(job.post)
				close(job.ticket.done)
			}
		}(w)
	}
	return e, nil
}

// Offer routes the post to its component's worker and returns a ticket.
// Posts must be offered in global time order; per-worker channels preserve
// that order within every component, which is all correctness requires.
func (e *ParallelMultiEngine) Offer(p *core.Post) (*Ticket, error) {
	if e.closed {
		return nil, fmt.Errorf("stream: engine is closed")
	}
	if int(p.Author) >= len(e.authorWorker) || p.Author < 0 {
		// Unknown author: no component, no deliveries.
		t := &Ticket{done: make(chan struct{})}
		close(t.done)
		return t, nil
	}
	t := &Ticket{done: make(chan struct{})}
	w := e.workers[e.authorWorker[p.Author]]
	w.ch <- parallelJob{post: p, ticket: t}
	return t, nil
}

// Close drains the workers; no further Offers are accepted.
func (e *ParallelMultiEngine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, w := range e.workers {
		close(w.ch)
	}
	e.wg.Wait()
}

// Counters merges all workers' counters (call after Close, or accept
// in-flight skew).
func (e *ParallelMultiEngine) Counters() metrics.Counters {
	var total metrics.Counters
	for _, w := range e.workers {
		total.Merge(*w.md.Counters())
	}
	return total
}

// NumWorkers returns the shard count.
func (e *ParallelMultiEngine) NumWorkers() int { return len(e.workers) }
