package stream

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"firehose/internal/authorsim"
	"firehose/internal/core"
	"firehose/internal/simhash"
)

// This file stress-tests the ParallelMultiEngine lifecycle under the race
// detector: Offer, Close and Counters hammered from many goroutines at once.
// On the pre-hardening engine (bare `closed` bool, unguarded counter reads)
// these tests fail under `go test -race`.

// raceScenario builds a small multi-component graph whose posts spread over
// every worker.
func raceScenario(t *testing.T) (*authorsim.Graph, [][]int32, core.Thresholds) {
	t.Helper()
	// 8 components of 2 similar authors each.
	var pairs []authorsim.SimPair
	for a := int32(0); a < 16; a += 2 {
		pairs = append(pairs, authorsim.SimPair{A: a, B: a + 1})
	}
	g := authorsim.NewGraph(16, pairs, 0.7)
	subs := make([][]int32, 4)
	for u := range subs {
		for a := int32(0); a < 16; a++ {
			subs[u] = append(subs[u], a)
		}
	}
	return g, subs, core.Thresholds{LambdaC: 8, LambdaT: 1000, LambdaA: 0.7}
}

func TestParallelConcurrentOfferCloseCounters(t *testing.T) {
	g, subs, th := raceScenario(t)
	e, err := NewParallelMultiEngine(core.AlgUniBin, g, subs, th, 4)
	if err != nil {
		t.Fatal(err)
	}

	const producers = 8
	const perProducer = 400
	var (
		wg       sync.WaitGroup
		accepted atomic.Uint64
		rejected atomic.Uint64
		tickets  = make([][]*Ticket, producers)
	)
	// All posts share one timestamp so any serialization the ingest boundary
	// picks is a valid time order.
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				p := &core.Post{
					ID:     uint64(pr*perProducer + i + 1),
					Author: int32((pr + i) % 16),
					Time:   1,
					FP:     simhash.Fingerprint(uint64(pr*perProducer+i) * 0x9e3779b97f4a7c15),
				}
				tk, err := e.Offer(p)
				switch {
				case err == nil:
					accepted.Add(1)
					tickets[pr] = append(tickets[pr], tk)
				case errors.Is(err, ErrClosed):
					rejected.Add(1)
				default:
					t.Errorf("unexpected Offer error: %v", err)
					return
				}
			}
		}(pr)
	}
	// Concurrent Counters snapshots while workers decide.
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	for r := 0; r < 3; r++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = e.Counters()
				}
			}
		}()
	}
	// A racing Close: some producers may lose the race and see ErrClosed.
	var closeWG sync.WaitGroup
	for c := 0; c < 2; c++ {
		closeWG.Add(1)
		go func() {
			defer closeWG.Done()
			e.Close()
		}()
	}
	wg.Wait()
	e.Close()
	closeWG.Wait()
	close(stop)
	snapWG.Wait()

	// Every accepted offer's ticket must be resolved after Close.
	var resolved uint64
	seen := make(map[uint64]bool)
	for _, ts := range tickets {
		for _, tk := range ts {
			select {
			case <-tk.done:
			default:
				t.Fatal("ticket unresolved after Close")
			}
			if seen[tk.Seq()] {
				t.Fatalf("duplicate sequence %d", tk.Seq())
			}
			seen[tk.Seq()] = true
			resolved++
		}
	}
	if resolved != accepted.Load() {
		t.Fatalf("resolved %d tickets, accepted %d offers", resolved, accepted.Load())
	}
	if accepted.Load()+rejected.Load() != producers*perProducer {
		t.Fatalf("offers unaccounted: %d + %d != %d",
			accepted.Load(), rejected.Load(), producers*perProducer)
	}
	// The final counter totals must equal the accepted offer count exactly.
	c := e.Counters()
	if c.Processed() != accepted.Load() {
		t.Fatalf("counters processed %d posts, engine accepted %d offers",
			c.Processed(), accepted.Load())
	}
	// Post-Close Offer fails with the typed error.
	if _, err := e.Offer(&core.Post{ID: 1, Author: 0, Time: 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Offer after Close: got %v, want ErrClosed", err)
	}
}

func TestParallelSequenceIsMonotonePerWorker(t *testing.T) {
	g, subs, th := raceScenario(t)
	e, err := NewParallelMultiEngine(core.AlgUniBin, g, subs, th, 3)
	if err != nil {
		t.Fatal(err)
	}
	const producers = 6
	var wg sync.WaitGroup
	seqs := make([][]uint64, producers)
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tk, err := e.Offer(&core.Post{
					ID: uint64(pr*200 + i + 1), Author: int32(i % 16), Time: 1,
				})
				if err != nil {
					t.Errorf("offer: %v", err)
					return
				}
				seqs[pr] = append(seqs[pr], tk.Seq())
			}
		}(pr)
	}
	wg.Wait()
	e.Close()
	// Each producer observes strictly increasing sequences (its own offers
	// are ordered), and across producers sequences are dense 1..N.
	all := make(map[uint64]bool)
	for pr, s := range seqs {
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Fatalf("producer %d: sequence not increasing: %d after %d", pr, s[i], s[i-1])
			}
		}
		for _, v := range s {
			if all[v] {
				t.Fatalf("sequence %d assigned twice", v)
			}
			all[v] = true
		}
	}
	for want := uint64(1); want <= uint64(len(all)); want++ {
		if !all[want] {
			t.Fatalf("sequence %d skipped", want)
		}
	}
}

func TestParallelFailFastQueueFull(t *testing.T) {
	g := authorsim.NewGraph(1, nil, 0.7)
	th := core.Thresholds{LambdaC: 3, LambdaT: 1000, LambdaA: 0.7}
	e, err := NewParallelMultiEngineOpts(core.AlgUniBin, g, [][]int32{{0}}, th, 1,
		ParallelOptions{QueueDepth: 1, FailFast: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.QueueDepth() != 1 {
		t.Fatalf("QueueDepth = %d", e.QueueDepth())
	}
	w := e.workers[0]

	// Stall the worker: it will dequeue the first job and block on w.mu
	// before deciding, leaving the queue slot free for exactly one more job.
	w.mu.Lock()
	t1, err := e.Offer(&core.Post{ID: 1, Author: 0, Time: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has pulled job 1 off the queue, freeing the slot.
	var t2 *Ticket
	for {
		t2, err = e.Offer(&core.Post{ID: 2, Author: 0, Time: 1})
		if err == nil {
			break
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatal(err)
		}
	}
	// Queue full (job 2 buffered, job 1 held by the stalled worker): the
	// next fail-fast Offer must return ErrQueueFull without blocking.
	if _, err := e.Offer(&core.Post{ID: 3, Author: 0, Time: 1}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue: got %v, want ErrQueueFull", err)
	}
	w.mu.Unlock()
	e.Close()
	if len(t1.Users()) != 1 {
		t.Fatal("first post should be delivered")
	}
	if len(t2.Users()) != 0 {
		t.Fatal("duplicate should be pruned")
	}
	// The rejected post burned no sequence number: accepted seqs stay dense.
	if t1.Seq() != 1 || t2.Seq() != 2 {
		t.Fatalf("sequences %d, %d; want 1, 2", t1.Seq(), t2.Seq())
	}
}

func TestParallelBlockingBackpressure(t *testing.T) {
	g := authorsim.NewGraph(1, nil, 0.7)
	th := core.Thresholds{LambdaC: 3, LambdaT: 1000, LambdaA: 0.7}
	e, err := NewParallelMultiEngineOpts(core.AlgUniBin, g, [][]int32{{0}}, th, 1,
		ParallelOptions{QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := e.workers[0]
	w.mu.Lock()
	if _, err := e.Offer(&core.Post{ID: 1, Author: 0, Time: 1}); err != nil {
		t.Fatal(err)
	}
	// Saturate the queue, then verify a further Offer blocks until the
	// worker drains, instead of failing or being dropped.
	var tickets [8]*Ticket
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := range tickets {
			tk, err := e.Offer(&core.Post{ID: uint64(i + 2), Author: 0, Time: 1})
			if err != nil {
				t.Errorf("blocking offer: %v", err)
				return
			}
			tickets[i] = tk
		}
	}()
	select {
	case <-done:
		t.Fatal("offers completed against a stalled worker with a 1-deep queue")
	default:
	}
	w.mu.Unlock()
	<-done
	e.Close()
	for i, tk := range tickets {
		if tk == nil {
			t.Fatalf("ticket %d missing", i)
		}
		<-tk.done
	}
}

func TestParallelCloseDrainsInFlight(t *testing.T) {
	g, subs, th := raceScenario(t)
	e, err := NewParallelMultiEngine(core.AlgUniBin, g, subs, th, 2)
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for i := 0; i < 300; i++ {
		tk, err := e.Offer(&core.Post{ID: uint64(i + 1), Author: int32(i % 16), Time: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	e.Close()
	for i, tk := range tickets {
		select {
		case <-tk.done:
		default:
			t.Fatalf("ticket %d unresolved after Close", i)
		}
	}
}

func TestParallelOptionsValidation(t *testing.T) {
	g := authorsim.NewGraph(1, nil, 0.7)
	th := core.Thresholds{LambdaC: 3, LambdaT: 1000, LambdaA: 0.7}
	if _, err := NewParallelMultiEngineOpts(core.AlgUniBin, g, [][]int32{{0}}, th, 1,
		ParallelOptions{QueueDepth: -1}); err == nil {
		t.Fatal("negative queue depth accepted")
	}
	e, err := NewParallelMultiEngine(core.AlgUniBin, g, [][]int32{{0}}, th, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.QueueDepth() != DefaultQueueDepth {
		t.Fatalf("default queue depth = %d, want %d", e.QueueDepth(), DefaultQueueDepth)
	}
}
