package stream

import (
	"errors"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"firehose/internal/authorsim"
	"firehose/internal/core"
	"firehose/internal/simhash"
	"firehose/internal/twittergen"
)

// parallelScenario builds a wired graph + subscriptions + stream.
func parallelScenario(t *testing.T, seed int64, nAuthors int) (*authorsim.Graph, [][]int32, []*core.Post) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sg, err := twittergen.GenerateGraph(rng, twittergen.DefaultGraphConfig(nAuthors))
	if err != nil {
		t.Fatal(err)
	}
	g := authorsim.BuildGraph(authorsim.NewVectors(sg.Followees), 0.7)
	vocab := twittergen.NewVocab(rand.New(rand.NewSource(seed+1)), 1500)
	gen, err := twittergen.GenerateStream(rand.New(rand.NewSource(seed+2)), sg, g, vocab,
		twittergen.DefaultStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g, sg.Subscriptions(), gen.Posts
}

func TestParallelMatchesSequential(t *testing.T) {
	g, subs, posts := parallelScenario(t, 21, 250)
	th := core.Thresholds{LambdaC: 18, LambdaT: 30 * 60 * 1000, LambdaA: 0.7}

	seq, err := core.NewSharedMultiUser(core.AlgUniBin, g, subs, th)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallelMultiEngine(core.AlgUniBin, g, subs, th, 4)
	if err != nil {
		t.Fatal(err)
	}

	type delivery struct {
		post  uint64
		users []int32
	}
	var wantDeliveries []delivery
	tickets := make([]*Ticket, len(posts))
	for i, p := range posts {
		// Clone: the solver's returned slice is scratch-backed and only valid
		// until the next Offer (the MultiDiversifier aliasing contract).
		wantDeliveries = append(wantDeliveries, delivery{post: p.ID, users: slices.Clone(seq.Offer(p))})
		tk, err := par.Offer(p)
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	par.Close()

	for i := range posts {
		got := tickets[i].Users()
		want := wantDeliveries[i].users
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		if len(got) != len(want) {
			t.Fatalf("post %d: parallel delivered %d users, sequential %d",
				posts[i].ID, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("post %d: deliveries differ: %v vs %v", posts[i].ID, got, want)
			}
		}
	}

	// Counter totals agree (same decisions, same bins, just sharded).
	sc := seq.Counters()
	pc := par.Counters()
	if pc.Accepted != sc.Accepted || pc.Rejected != sc.Rejected {
		t.Fatalf("accept/reject differ: parallel %d/%d vs sequential %d/%d",
			pc.Accepted, pc.Rejected, sc.Accepted, sc.Rejected)
	}
	if pc.Comparisons != sc.Comparisons || pc.Insertions != sc.Insertions {
		t.Fatalf("work differs: parallel %d/%d vs sequential %d/%d",
			pc.Comparisons, pc.Insertions, sc.Comparisons, sc.Insertions)
	}
}

func TestParallelWorkerCounts(t *testing.T) {
	g, subs, _ := parallelScenario(t, 22, 100)
	th := core.Thresholds{LambdaC: 18, LambdaT: 1000, LambdaA: 0.7}
	for _, workers := range []int{1, 2, 8} {
		e, err := NewParallelMultiEngine(core.AlgUniBin, g, subs, th, workers)
		if err != nil {
			t.Fatal(err)
		}
		if e.NumWorkers() != workers {
			t.Fatalf("NumWorkers = %d", e.NumWorkers())
		}
		e.Close()
	}
	if _, err := NewParallelMultiEngine(core.AlgUniBin, g, subs, th, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestParallelUnknownAuthor(t *testing.T) {
	g := authorsim.NewGraph(2, []authorsim.SimPair{{A: 0, B: 1}}, 0.7)
	th := core.Thresholds{LambdaC: 3, LambdaT: 1000, LambdaA: 0.7}
	e, err := NewParallelMultiEngine(core.AlgUniBin, g, [][]int32{{0, 1}}, th, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tk, err := e.Offer(&core.Post{ID: 1, Author: 99, Time: 1, FP: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := tk.Users(); len(got) != 0 {
		t.Fatalf("unknown author delivered to %v", got)
	}
}

func TestParallelOfferAfterClose(t *testing.T) {
	g := authorsim.NewGraph(1, nil, 0.7)
	th := core.Thresholds{LambdaC: 3, LambdaT: 1000, LambdaA: 0.7}
	e, _ := NewParallelMultiEngine(core.AlgUniBin, g, [][]int32{{0}}, th, 1)
	e.Close()
	e.Close() // double close is a no-op
	if _, err := e.Offer(&core.Post{ID: 1, Author: 0, Time: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("offer after close: got %v, want ErrClosed", err)
	}
}

func TestParallelComponentAffinity(t *testing.T) {
	// Two posts by similar authors must reach the same worker so the second
	// is pruned — sharding must never split a component.
	g := authorsim.NewGraph(4, []authorsim.SimPair{{A: 0, B: 1}, {A: 2, B: 3}}, 0.7)
	th := core.Thresholds{LambdaC: 3, LambdaT: 1000, LambdaA: 0.7}
	subs := [][]int32{{0, 1, 2, 3}}
	e, err := NewParallelMultiEngine(core.AlgUniBin, g, subs, th, 2)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := e.Offer(&core.Post{ID: 1, Author: 0, Time: 1, FP: 0})
	t2, _ := e.Offer(&core.Post{ID: 2, Author: 1, Time: 2, FP: 1}) // covered by #1
	t3, _ := e.Offer(&core.Post{ID: 3, Author: 2, Time: 3, FP: 0}) // other component: kept
	e.Close()
	if len(t1.Users()) != 1 || len(t3.Users()) != 1 {
		t.Fatal("fresh posts should be delivered")
	}
	if len(t2.Users()) != 0 {
		t.Fatal("near-duplicate from a similar author must be pruned across workers")
	}
}

func BenchmarkParallelVsSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	sg, err := twittergen.GenerateGraph(rng, twittergen.DefaultGraphConfig(400))
	if err != nil {
		b.Fatal(err)
	}
	g := authorsim.BuildGraph(authorsim.NewVectors(sg.Followees), 0.7)
	subs := sg.Subscriptions()
	th := core.Thresholds{LambdaC: 18, LambdaT: 30 * 60 * 1000, LambdaA: 0.7}
	posts := make([]*core.Post, 5000)
	for i := range posts {
		posts[i] = &core.Post{
			ID: uint64(i + 1), Author: int32(rng.Intn(400)),
			Time: int64(i * 10), FP: simhash.Fingerprint(rng.Uint64()),
		}
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			md, _ := core.NewSharedMultiUser(core.AlgUniBin, g, subs, th)
			for _, p := range posts {
				md.Offer(p)
			}
		}
	})
	b.Run("parallel-4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, _ := NewParallelMultiEngine(core.AlgUniBin, g, subs, th, 4)
			for _, p := range posts {
				e.Offer(p)
			}
			e.Close()
		}
	})
}
