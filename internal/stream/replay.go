package stream

import (
	"fmt"
	"time"

	"firehose/internal/core"
)

// Replay adapts a recorded, time-ordered source into a "live" one: Next
// blocks until each post's timestamp is due under a configurable speedup, so
// a one-day corpus can drive the engine as a real-time feed (at Speedup
// 1440, a day replays in a minute). The zero clock uses the wall clock;
// tests inject a virtual one.
type Replay struct {
	src     Source
	speedup float64

	now   func() time.Time
	sleep func(time.Duration)

	started   bool
	startWall time.Time
	startPost int64 // first post's timestamp (millis)
}

// NewReplay wraps src with pacing. speedup must be positive; 1 replays in
// real time, larger values compress time.
func NewReplay(src Source, speedup float64) (*Replay, error) {
	if speedup <= 0 {
		return nil, fmt.Errorf("stream: speedup must be positive, got %v", speedup)
	}
	return &Replay{
		src:     src,
		speedup: speedup,
		now:     time.Now,
		sleep:   time.Sleep,
	}, nil
}

// SetClock injects a virtual clock (for tests). Both funcs must be non-nil.
func (r *Replay) SetClock(now func() time.Time, sleep func(time.Duration)) {
	r.now = now
	r.sleep = sleep
}

// Next implements Source, blocking until the next post is due.
func (r *Replay) Next() (*core.Post, bool) {
	p, ok := r.src.Next()
	if !ok {
		return nil, false
	}
	if !r.started {
		r.started = true
		r.startWall = r.now()
		r.startPost = p.Time
		return p, true
	}
	due := r.startWall.Add(time.Duration(float64(p.Time-r.startPost)/r.speedup) * time.Millisecond)
	if wait := due.Sub(r.now()); wait > 0 {
		r.sleep(wait)
	}
	return p, true
}
