package stream

import (
	"fmt"
	"time"

	"firehose/internal/core"
)

// Pacer converts recorded post timestamps into wall-clock waits under a
// configurable speedup: the first timestamp it sees anchors the schedule, and
// Wait blocks until each subsequent timestamp is due. Replay uses it to turn
// a corpus into a live feed; the connector file input uses it to replay an
// NDJSON stream at recorded (or compressed) speed. The zero clock uses the
// wall clock; tests inject a virtual one via SetClock.
type Pacer struct {
	speedup float64

	now   func() time.Time
	sleep func(time.Duration)

	started   bool
	startWall time.Time
	startPost int64 // first timestamp seen (millis)
}

// NewPacer builds a pacer. speedup must be positive; 1 replays in real time,
// larger values compress time.
func NewPacer(speedup float64) (*Pacer, error) {
	if speedup <= 0 {
		return nil, fmt.Errorf("stream: speedup must be positive, got %v", speedup)
	}
	return &Pacer{
		speedup: speedup,
		now:     time.Now,
		sleep:   time.Sleep,
	}, nil
}

// SetClock injects a virtual clock (for tests). Both funcs must be non-nil.
func (p *Pacer) SetClock(now func() time.Time, sleep func(time.Duration)) {
	p.now = now
	p.sleep = sleep
}

// Wait blocks until the post timestamp timeMillis is due. The first call
// returns immediately and anchors the schedule.
func (p *Pacer) Wait(timeMillis int64) {
	if !p.started {
		p.started = true
		p.startWall = p.now()
		p.startPost = timeMillis
		return
	}
	due := p.startWall.Add(time.Duration(float64(timeMillis-p.startPost)/p.speedup) * time.Millisecond)
	if wait := due.Sub(p.now()); wait > 0 {
		p.sleep(wait)
	}
}

// Replay adapts a recorded, time-ordered source into a "live" one: Next
// blocks until each post's timestamp is due under a configurable speedup, so
// a one-day corpus can drive the engine as a real-time feed (at Speedup
// 1440, a day replays in a minute).
type Replay struct {
	src  Source
	pace *Pacer
}

// NewReplay wraps src with pacing. speedup must be positive; 1 replays in
// real time, larger values compress time.
func NewReplay(src Source, speedup float64) (*Replay, error) {
	pace, err := NewPacer(speedup)
	if err != nil {
		return nil, err
	}
	return &Replay{src: src, pace: pace}, nil
}

// SetClock injects a virtual clock (for tests). Both funcs must be non-nil.
func (r *Replay) SetClock(now func() time.Time, sleep func(time.Duration)) {
	r.pace.SetClock(now, sleep)
}

// Next implements Source, blocking until the next post is due.
func (r *Replay) Next() (*core.Post, bool) {
	p, ok := r.src.Next()
	if !ok {
		return nil, false
	}
	r.pace.Wait(p.Time)
	return p, true
}
