package stream

import (
	"testing"
	"time"

	"firehose/internal/core"
)

// virtualClock simulates time: sleep advances it instantly.
type virtualClock struct {
	t time.Time
	// slept records every sleep duration.
	slept []time.Duration
}

func (c *virtualClock) now() time.Time { return c.t }
func (c *virtualClock) sleep(d time.Duration) {
	c.slept = append(c.slept, d)
	c.t = c.t.Add(d)
}

func TestReplayPacing(t *testing.T) {
	posts := []*core.Post{
		mkPost(1, 0, 0),
		mkPost(2, 0, 1000), // 1s after the first
		mkPost(3, 0, 4000), // 3s after the second
	}
	src, _ := NewSliceSource(posts)
	r, err := NewReplay(src, 2) // 2× speedup: gaps halve
	if err != nil {
		t.Fatal(err)
	}
	clock := &virtualClock{t: time.Unix(100, 0)}
	r.SetClock(clock.now, clock.sleep)

	got := Drain(r)
	if len(got) != 3 {
		t.Fatalf("drained %d posts", len(got))
	}
	if len(clock.slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(clock.slept))
	}
	if clock.slept[0] != 500*time.Millisecond {
		t.Fatalf("first gap %v, want 500ms (1s at 2x)", clock.slept[0])
	}
	// Post 3 is due 2s after the schedule origin; 0.5s already elapsed
	// during the first sleep, so the remaining wait is 1.5s.
	if clock.slept[1] != 1500*time.Millisecond {
		t.Fatalf("second gap %v, want 1.5s", clock.slept[1])
	}
	// Total virtual time elapsed equals the compressed span: 4s at 2×.
	if total := clock.t.Sub(time.Unix(100, 0)); total != 2*time.Second {
		t.Fatalf("total elapsed %v, want 2s", total)
	}
}

func TestReplayNoSleepWhenBehind(t *testing.T) {
	posts := []*core.Post{mkPost(1, 0, 0), mkPost(2, 0, 100)}
	src, _ := NewSliceSource(posts)
	r, _ := NewReplay(src, 1)
	clock := &virtualClock{t: time.Unix(0, 0)}
	r.SetClock(clock.now, func(d time.Duration) {
		clock.slept = append(clock.slept, d)
	})
	r.Next()
	// Simulate slow processing: wall time jumps past the next due time.
	clock.t = clock.t.Add(5 * time.Second)
	if _, ok := r.Next(); !ok {
		t.Fatal("second post missing")
	}
	if len(clock.slept) != 0 {
		t.Fatalf("slept %v while behind schedule", clock.slept)
	}
}

func TestReplayEmptyAndValidation(t *testing.T) {
	src, _ := NewSliceSource(nil)
	r, err := NewReplay(src, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("empty replay should be exhausted")
	}
	if _, err := NewReplay(src, 0); err == nil {
		t.Fatal("zero speedup accepted")
	}
	if _, err := NewReplay(src, -1); err == nil {
		t.Fatal("negative speedup accepted")
	}
}

func TestReplayRealClockSmoke(t *testing.T) {
	// With an extreme speedup the real clock path finishes instantly.
	posts := []*core.Post{mkPost(1, 0, 0), mkPost(2, 0, 60_000)}
	src, _ := NewSliceSource(posts)
	r, _ := NewReplay(src, 1_000_000)
	start := time.Now()
	if got := Drain(r); len(got) != 2 {
		t.Fatalf("drained %d", len(got))
	}
	if time.Since(start) > time.Second {
		t.Fatal("replay took too long")
	}
}
