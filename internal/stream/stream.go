// Package stream provides the real-time plumbing around the core
// diversification algorithms: post sources, k-way time-ordered merging of
// per-author streams (a user's subscriptions arrive as many streams but the
// algorithms consume one), and engines that run SPSD / M-SPSD over live
// feeds with the algorithms' single-writer discipline preserved behind a
// concurrency-safe facade.
package stream

import (
	"container/heap"
	"fmt"
	"sort"

	"firehose/internal/core"
)

// Source yields posts in non-decreasing time order. Next returns ok=false
// when the source is exhausted.
type Source interface {
	Next() (*core.Post, bool)
}

// SliceSource adapts an in-memory, time-ordered post slice.
type SliceSource struct {
	posts []*core.Post
	i     int
}

// NewSliceSource validates ordering and wraps the slice.
func NewSliceSource(posts []*core.Post) (*SliceSource, error) {
	for i := 1; i < len(posts); i++ {
		if posts[i].Time < posts[i-1].Time {
			return nil, fmt.Errorf("stream: posts out of order at index %d", i)
		}
	}
	return &SliceSource{posts: posts}, nil
}

// Next implements Source.
func (s *SliceSource) Next() (*core.Post, bool) {
	if s.i >= len(s.posts) {
		return nil, false
	}
	p := s.posts[s.i]
	s.i++
	return p, true
}

// ChanSource adapts a channel of posts (assumed time-ordered by the sender).
type ChanSource struct {
	ch <-chan *core.Post
}

// NewChanSource wraps a channel.
func NewChanSource(ch <-chan *core.Post) *ChanSource { return &ChanSource{ch: ch} }

// Next implements Source; it blocks until a post arrives or the channel
// closes.
func (s *ChanSource) Next() (*core.Post, bool) {
	p, ok := <-s.ch
	return p, ok
}

// Merge combines k time-ordered sources into one time-ordered source using a
// binary heap — the fan-in a subscription timeline performs over per-author
// feeds. Ties are broken by post ID for determinism.
type Merge struct {
	h mergeHeap
}

// NewMerge primes the heap with the head of every source.
func NewMerge(sources ...Source) *Merge {
	m := &Merge{}
	for _, src := range sources {
		if p, ok := src.Next(); ok {
			m.h = append(m.h, mergeItem{post: p, src: src})
		}
	}
	heap.Init(&m.h)
	return m
}

// Next implements Source.
func (m *Merge) Next() (*core.Post, bool) {
	if len(m.h) == 0 {
		return nil, false
	}
	top := m.h[0]
	if p, ok := top.src.Next(); ok {
		m.h[0] = mergeItem{post: p, src: top.src}
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return top.post, true
}

type mergeItem struct {
	post *core.Post
	src  Source
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].post.Time != h[j].post.Time {
		return h[i].post.Time < h[j].post.Time
	}
	return h[i].post.ID < h[j].post.ID
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Drain reads a source to exhaustion.
func Drain(s Source) []*core.Post {
	var out []*core.Post
	for {
		p, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

// SplitByAuthor partitions a time-ordered post slice into per-author
// time-ordered slices, for tests and for building per-author sources.
func SplitByAuthor(posts []*core.Post) map[int32][]*core.Post {
	m := make(map[int32][]*core.Post)
	for _, p := range posts {
		m[p.Author] = append(m[p.Author], p)
	}
	return m
}

// SortedAuthors returns the sorted author ids present in a split.
func SortedAuthors(split map[int32][]*core.Post) []int32 {
	out := make([]int32, 0, len(split))
	for a := range split {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
