package stream

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"firehose/internal/authorsim"
	"firehose/internal/core"
)

func mkPost(id uint64, author int32, t int64) *core.Post {
	return &core.Post{ID: id, Author: author, Time: t, FP: core.Fingerprint("post")}
}

func TestSliceSource(t *testing.T) {
	posts := []*core.Post{mkPost(1, 0, 10), mkPost(2, 0, 20)}
	s, err := NewSliceSource(posts)
	if err != nil {
		t.Fatal(err)
	}
	if got := Drain(s); !reflect.DeepEqual(got, posts) {
		t.Fatalf("Drain = %v", got)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source should report !ok")
	}
}

func TestSliceSourceRejectsDisorder(t *testing.T) {
	if _, err := NewSliceSource([]*core.Post{mkPost(1, 0, 20), mkPost(2, 0, 10)}); err == nil {
		t.Fatal("expected ordering error")
	}
}

func TestChanSource(t *testing.T) {
	ch := make(chan *core.Post, 2)
	ch <- mkPost(1, 0, 5)
	ch <- mkPost(2, 0, 6)
	close(ch)
	got := Drain(NewChanSource(ch))
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("Drain = %v", got)
	}
}

func TestMergeOrdersAcrossSources(t *testing.T) {
	a, _ := NewSliceSource([]*core.Post{mkPost(1, 0, 10), mkPost(3, 0, 30), mkPost(5, 0, 50)})
	b, _ := NewSliceSource([]*core.Post{mkPost(2, 1, 20), mkPost(4, 1, 40)})
	c, _ := NewSliceSource(nil)
	got := Drain(NewMerge(a, b, c))
	want := []uint64{1, 2, 3, 4, 5}
	ids := make([]uint64, len(got))
	for i, p := range got {
		ids[i] = p.ID
	}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("merged ids = %v, want %v", ids, want)
	}
}

func TestMergeTieBreaksByID(t *testing.T) {
	a, _ := NewSliceSource([]*core.Post{mkPost(2, 0, 10)})
	b, _ := NewSliceSource([]*core.Post{mkPost(1, 1, 10)})
	got := Drain(NewMerge(a, b))
	if got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("tie-break failed: %v, %v", got[0].ID, got[1].ID)
	}
}

func TestMergeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		var all []*core.Post
		var sources []Source
		id := uint64(1)
		for s := 0; s < 1+rng.Intn(6); s++ {
			var posts []*core.Post
			tm := int64(0)
			for i := 0; i < rng.Intn(30); i++ {
				tm += int64(rng.Intn(10))
				posts = append(posts, mkPost(id, int32(s), tm))
				id++
			}
			src, err := NewSliceSource(posts)
			if err != nil {
				t.Fatal(err)
			}
			sources = append(sources, src)
			all = append(all, posts...)
		}
		merged := Drain(NewMerge(sources...))
		if len(merged) != len(all) {
			t.Fatalf("merged %d of %d posts", len(merged), len(all))
		}
		for i := 1; i < len(merged); i++ {
			if merged[i].Time < merged[i-1].Time {
				t.Fatalf("merge out of order at %d", i)
			}
		}
	}
}

func TestSplitByAuthorAndSortedAuthors(t *testing.T) {
	posts := []*core.Post{mkPost(1, 2, 1), mkPost(2, 0, 2), mkPost(3, 2, 3)}
	split := SplitByAuthor(posts)
	if len(split[2]) != 2 || len(split[0]) != 1 {
		t.Fatalf("split = %v", split)
	}
	if got := SortedAuthors(split); !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Fatalf("SortedAuthors = %v", got)
	}
}

func testGraph() *authorsim.Graph {
	return authorsim.NewGraph(3, []authorsim.SimPair{{A: 0, B: 1}}, 0.7)
}

func TestEngineOfferAndSubscribe(t *testing.T) {
	th := core.Thresholds{LambdaC: 3, LambdaT: 1000, LambdaA: 0.7}
	e := NewEngine(core.NewUniBin(testGraph(), th))
	sub := e.Subscribe(16)

	p1 := &core.Post{ID: 1, Author: 0, Time: 1, FP: 0}
	p2 := &core.Post{ID: 2, Author: 1, Time: 2, FP: 1} // covered by p1
	p3 := &core.Post{ID: 3, Author: 2, Time: 3, FP: 2} // dissimilar author

	for i, tc := range []struct {
		p    *core.Post
		want bool
	}{{p1, true}, {p2, false}, {p3, true}} {
		got, err := e.Offer(tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("offer %d = %v, want %v", i, got, tc.want)
		}
	}
	e.Close()
	var ids []uint64
	for p := range sub {
		ids = append(ids, p.ID)
	}
	if !reflect.DeepEqual(ids, []uint64{1, 3}) {
		t.Fatalf("subscriber saw %v", ids)
	}
	if c := e.Counters(); c.Accepted != 2 || c.Rejected != 1 {
		t.Fatalf("counters %+v", c)
	}
	if _, err := e.Offer(p1); err == nil {
		t.Fatal("offer after Close should fail")
	}
}

func TestEngineConsume(t *testing.T) {
	th := core.Thresholds{LambdaC: 3, LambdaT: 1000, LambdaA: 0.7}
	e := NewEngine(core.NewUniBin(testGraph(), th))
	src, _ := NewSliceSource([]*core.Post{
		{ID: 1, Author: 0, Time: 1, FP: 0},
		{ID: 2, Author: 1, Time: 2, FP: 1},
	})
	out, err := e.Consume(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].ID != 1 {
		t.Fatalf("Consume = %v", out)
	}
}

func TestEngineConcurrentIngest(t *testing.T) {
	// Many goroutines hammer Offer with the same timestamp; the engine must
	// serialize them without a data race (run with -race) and process all.
	th := core.Thresholds{LambdaC: 0, LambdaT: 10, LambdaA: 0.7}
	e := NewEngine(core.NewUniBin(testGraph(), th))
	var wg sync.WaitGroup
	const n = 200
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			_, err := e.Offer(&core.Post{ID: uint64(id + 1), Author: 2, Time: 100, FP: core.Fingerprint("x")})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	c := e.Counters()
	if c.Processed() != n {
		t.Fatalf("processed %d of %d", c.Processed(), n)
	}
	// All posts identical and simultaneous: exactly one accepted.
	if c.Accepted != 1 {
		t.Fatalf("accepted %d, want 1", c.Accepted)
	}
}

func TestEngineSwapRefreshedGraph(t *testing.T) {
	// The weekly-graph-refresh flow: authors 0 and 2 become similar after a
	// follow change; swapping the refreshed graph into a UniBin engine
	// applies immediately with no window-state loss.
	g := authorsim.NewGraph(3, []authorsim.SimPair{{A: 0, B: 1}}, 0.7)
	th := core.Thresholds{LambdaC: 3, LambdaT: 60_000, LambdaA: 0.7}
	ub := core.NewUniBin(g, th)
	e := NewEngine(ub)

	if ok, _ := e.Offer(&core.Post{ID: 1, Author: 0, Time: 1000, FP: 0}); !ok {
		t.Fatal("first post kept")
	}
	// Author 2 is dissimilar: duplicate content is kept.
	if ok, _ := e.Offer(&core.Post{ID: 2, Author: 2, Time: 2000, FP: 0}); !ok {
		t.Fatal("dissimilar author's duplicate kept")
	}

	// Refresh: author 2's followees drifted toward author 0's.
	g2, err := g.WithUpdatedAuthor(2, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	e.Swap(func(d core.Diversifier) core.Diversifier {
		d.(*core.UniBin).SetGraph(g2)
		return d
	})

	// Now the same duplicate from author 2 is pruned — and crucially the
	// pre-swap window state still covers it (post #1 is the cover).
	if ok, _ := e.Offer(&core.Post{ID: 3, Author: 2, Time: 3000, FP: 1}); ok {
		t.Fatal("post-refresh duplicate should be pruned using pre-swap state")
	}
	if c := e.Counters(); c.Accepted != 2 || c.Rejected != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestMultiEngine(t *testing.T) {
	g := testGraph()
	th := core.Thresholds{LambdaC: 3, LambdaT: 1000, LambdaA: 0.7}
	md, err := core.NewSharedMultiUser(core.AlgUniBin, g, [][]int32{{0, 1}, {0, 1}, {2}}, th)
	if err != nil {
		t.Fatal(err)
	}
	me := NewMultiEngine(md)
	users, err := me.Offer(&core.Post{ID: 1, Author: 0, Time: 1, FP: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(users, []int32{0, 1}) {
		t.Fatalf("delivered to %v", users)
	}
	if tl := me.Timeline(0); len(tl) != 1 || tl[0].ID != 1 {
		t.Fatalf("timeline(0) = %v", tl)
	}
	if tl := me.Timeline(2); len(tl) != 0 {
		t.Fatalf("timeline(2) = %v", tl)
	}
	if c := me.Counters(); c.Accepted != 1 {
		t.Fatalf("counters %+v", c)
	}
	me.Close()
	if _, err := me.Offer(&core.Post{ID: 2, Author: 0, Time: 2, FP: 0}); err == nil {
		t.Fatal("offer after Close should fail")
	}
}

func TestMultiEngineSwapRefreshedGraph(t *testing.T) {
	// Graph churn against a live multi-user engine: a follow change folds
	// into a refreshed graph (the paper's incremental maintenance), Swap is
	// the safe point, and the pre-swap window state stays in force. Chain
	// 0–1–2–3 keeps all four authors in one shared component so the new
	// 0–3 edge is visible to the S_* solver's construction-time partition.
	g := authorsim.NewGraph(4, []authorsim.SimPair{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}}, 0.7)
	th := core.Thresholds{LambdaC: 3, LambdaT: 60_000, LambdaA: 0.7}
	md, err := core.NewSharedMultiUser(core.AlgUniBin, g, [][]int32{{0, 1, 2, 3}}, th)
	if err != nil {
		t.Fatal(err)
	}
	me := NewMultiEngine(md)
	if users, _ := me.Offer(&core.Post{ID: 1, Author: 0, Time: 1000, FP: 0}); len(users) != 1 {
		t.Fatalf("first post delivered to %v", users)
	}
	g2, err := g.WithUpdatedAuthor(0, []int32{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	me.Swap(func(d core.MultiDiversifier) core.MultiDiversifier {
		if err := d.(*core.SharedMultiUser).SetGraph(g2); err != nil {
			t.Errorf("SetGraph: %v", err)
		}
		return d
	})
	// Author 3's identical post is now covered by author 0's pre-swap post.
	if users, _ := me.Offer(&core.Post{ID: 2, Author: 3, Time: 2000, FP: 0}); len(users) != 0 {
		t.Fatalf("refreshed adjacency not consulted, delivered to %v", users)
	}
	// Author 2 remains non-adjacent to 0: still delivered, timeline intact.
	if users, _ := me.Offer(&core.Post{ID: 3, Author: 2, Time: 3000, FP: 0}); len(users) != 1 {
		t.Fatalf("unrelated author suppressed after swap: %v", users)
	}
	if tl := me.Timeline(0); len(tl) != 2 || tl[0].ID != 1 || tl[1].ID != 3 {
		t.Fatalf("timeline after churn = %v", tl)
	}
}

func TestMultiEngineConcurrent(t *testing.T) {
	g := testGraph()
	th := core.Thresholds{LambdaC: 3, LambdaT: 5, LambdaA: 0.7}
	md, _ := core.NewSharedMultiUser(core.AlgNeighborBin, g, [][]int32{{0, 1, 2}}, th)
	me := NewMultiEngine(md)
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if _, err := me.Offer(&core.Post{
				ID: uint64(id + 1), Author: int32(id % 3), Time: 50, FP: core.Fingerprint("y"),
			}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	total := 0
	for u := int32(0); u < 1; u++ {
		total += len(me.Timeline(u))
	}
	// Authors 0,1 are similar so their posts collapse; author 2 is isolated.
	if total != 2 {
		t.Fatalf("timeline total %d, want 2 (one per similarity class)", total)
	}
}
