package textnorm

import (
	"strings"
	"testing"
	"unicode"
	"unicode/utf8"
)

// FuzzNormalize checks the normalization invariants on arbitrary input:
// idempotence, a clean output alphabet, and stability of the token count
// under re-normalization.
func FuzzNormalize(f *testing.F) {
	seeds := []string{
		"",
		"Hello, World!",
		"Over 300 people missing after South Korean ferry sinks. (Reuters) Story: http://t.co/9w2JrurhKm",
		"   multiple   spaces\tand\ttabs  ",
		"#hashtag @mention http://t.co/x",
		"émoji ☕ and 中文 und Köln",
		strings.Repeat("a", 1000),
		"\x00\x01 control \x7f bytes",
		"“smart quotes” — em-dashes…",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out := Normalize(s)
		if !utf8.ValidString(out) && utf8.ValidString(s) {
			t.Fatalf("valid input produced invalid UTF-8: %q -> %q", s, out)
		}
		if again := Normalize(out); again != out {
			t.Fatalf("not idempotent: %q -> %q -> %q", s, out, again)
		}
		if strings.HasPrefix(out, " ") || strings.HasSuffix(out, " ") || strings.Contains(out, "  ") {
			t.Fatalf("whitespace not collapsed: %q -> %q", s, out)
		}
		for _, r := range out {
			if r != ' ' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				t.Fatalf("non-alphanumeric rune %q survived: %q -> %q", r, s, out)
			}
		}
		// Tokenizing the normalized form is stable.
		toks := NormalizedTokens(s)
		if got := Tokenize(out); len(got) != len(toks) {
			t.Fatalf("token count unstable: %d vs %d", len(got), len(toks))
		}
	})
}

// FuzzTokensWithOptions ensures the option pipeline never panics and honors
// the URL-dropping contract on arbitrary input.
func FuzzTokensWithOptions(f *testing.F) {
	f.Add("story http://t.co/abc #tag @user", true, 3, 2)
	f.Add("", false, 0, 0)
	f.Add("thx u r gr8", true, 1, 1)
	f.Fuzz(func(t *testing.T, s string, norm bool, mw, hw int) {
		if mw < 0 || mw > 8 || hw < 0 || hw > 8 {
			t.Skip()
		}
		opts := Options{
			Normalize:           norm,
			DropURLs:            true,
			MentionWeight:       mw,
			HashtagWeight:       hw,
			ExpandAbbreviations: true,
		}
		for _, tok := range TokensWithOptions(s, opts) {
			if IsURL(tok) {
				t.Fatalf("URL %q survived DropURLs", tok)
			}
			if tok == "" {
				t.Fatal("empty token produced")
			}
		}
	})
}
