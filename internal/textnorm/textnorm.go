// Package textnorm implements the microblog text preprocessing pipeline from
// Section 3 of the paper. The paper's normalization — the variant that
// improved SimHash precision/recall (Figure 4 vs Figure 3) — is:
//
//  1. lowercase all text,
//  2. collapse extra whitespace between words,
//  3. remove non-alphanumeric characters (*, -, +, /, quotes, ...).
//
// The package also implements the preprocessing variants the paper evaluated
// and found not to help (expanding shortened URLs, re-weighting mentions and
// hashtags by duplicating tokens, expanding abbreviations), so the ablation in
// the experiments can reproduce that negative result.
package textnorm

import (
	"strings"
	"unicode"
)

// Normalize applies the paper's default normalization: lowercase, collapse
// whitespace runs to single spaces, and strip non-alphanumeric runes
// (whitespace is preserved as the token separator). It never returns leading
// or trailing spaces.
func Normalize(text string) string {
	var sb strings.Builder
	sb.Grow(len(text))
	space := false // pending separator
	wrote := false
	for _, r := range text {
		switch {
		case unicode.IsSpace(r):
			space = true
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			if space && wrote {
				sb.WriteByte(' ')
			}
			space = false
			sb.WriteRune(unicode.ToLower(r))
			wrote = true
		default:
			// Non-alphanumeric, non-space runes are removed entirely.
		}
	}
	return sb.String()
}

// Tokenize splits text on whitespace. It performs no normalization; compose
// with Normalize for the paper's pipeline, or use NormalizedTokens.
func Tokenize(text string) []string {
	return strings.Fields(text)
}

// NormalizedTokens returns the token bag of the normalized text. This is the
// input the paper feeds SimHash in Figure 4 and all of Section 6.
func NormalizedTokens(text string) []string {
	return Tokenize(Normalize(text))
}

// RawTokens returns the token bag of the raw text (whitespace split only),
// as used for the Figure 3 baseline.
func RawTokens(text string) []string {
	return Tokenize(text)
}

// IsURL reports whether a raw token looks like a URL. Twitter wraps links in
// its t.co shortener, so the common cases are http(s) prefixes.
func IsURL(tok string) bool {
	return strings.HasPrefix(tok, "http://") || strings.HasPrefix(tok, "https://") ||
		strings.HasPrefix(tok, "www.")
}

// IsMention reports whether a raw token is a user mention (@handle).
func IsMention(tok string) bool {
	return len(tok) > 1 && tok[0] == '@'
}

// IsHashtag reports whether a raw token is a hashtag (#tag).
func IsHashtag(tok string) bool {
	return len(tok) > 1 && tok[0] == '#'
}

// Options selects preprocessing variants for TokensWithOptions. The zero
// value reproduces the paper's default (normalize only).
type Options struct {
	// Normalize applies the lowercase/whitespace/alphanumeric pipeline.
	Normalize bool
	// ExpandURLs replaces shortened URLs with their expansion using the
	// provided resolver. The paper expanded t.co links; with a nil resolver
	// URLs are kept as-is.
	ExpandURLs func(url string) string
	// DropURLs removes URL tokens entirely.
	DropURLs bool
	// MentionWeight repeats each mention token this many times (0 or 1 means
	// unchanged). The paper created "artificial copies" to vary weights.
	MentionWeight int
	// HashtagWeight repeats each hashtag token this many times.
	HashtagWeight int
	// ExpandAbbreviations replaces known abbreviations with their expansions.
	ExpandAbbreviations bool
}

// DefaultAbbreviations is a small lexicon of microblog abbreviations used by
// the ExpandAbbreviations option. Expansions are already normalized.
var DefaultAbbreviations = map[string]string{
	"u":     "you",
	"ur":    "your",
	"r":     "are",
	"pls":   "please",
	"plz":   "please",
	"thx":   "thanks",
	"b4":    "before",
	"gr8":   "great",
	"2day":  "today",
	"2moro": "tomorrow",
	"w/":    "with",
	"w/o":   "without",
	"rt":    "retweet",
	"dm":    "direct message",
	"imo":   "in my opinion",
	"imho":  "in my honest opinion",
	"idk":   "i do not know",
	"btw":   "by the way",
	"omg":   "oh my god",
	"lol":   "laughing out loud",
	"brb":   "be right back",
	"ppl":   "people",
	"msg":   "message",
	"govt":  "government",
	"natl":  "national",
	"intl":  "international",
}

// TokensWithOptions applies the selected preprocessing variants in the order
// the paper describes: URL handling first (on raw tokens, before
// normalization destroys the punctuation that identifies them), then mention
// and hashtag weighting, then normalization, then abbreviation expansion.
func TokensWithOptions(text string, o Options) []string {
	raw := Tokenize(text)
	out := make([]string, 0, len(raw))
	for _, tok := range raw {
		switch {
		case IsURL(tok):
			if o.DropURLs {
				continue
			}
			if o.ExpandURLs != nil {
				tok = o.ExpandURLs(tok)
			}
			out = append(out, tok)
		case IsMention(tok):
			out = append(out, tok)
			for i := 1; i < o.MentionWeight; i++ {
				out = append(out, tok)
			}
		case IsHashtag(tok):
			out = append(out, tok)
			for i := 1; i < o.HashtagWeight; i++ {
				out = append(out, tok)
			}
		default:
			out = append(out, tok)
		}
	}
	if o.Normalize {
		normalized := out[:0]
		for _, tok := range out {
			n := Normalize(tok)
			if n == "" {
				continue
			}
			// Normalization may split nothing (single token in, single out)
			// but an expanded URL can contain separators.
			normalized = append(normalized, strings.Fields(n)...)
		}
		out = normalized
	}
	if o.ExpandAbbreviations {
		expanded := make([]string, 0, len(out))
		for _, tok := range out {
			key := strings.ToLower(tok)
			if exp, ok := DefaultAbbreviations[key]; ok {
				expanded = append(expanded, strings.Fields(exp)...)
			} else {
				expanded = append(expanded, tok)
			}
		}
		out = expanded
	}
	return out
}

// MeaningfulTokenCount counts tokens that carry content: not URLs, not bare
// mentions, and containing at least one letter or digit. The paper removed
// tweets "that have less than two words or only contain meaningless tokens"
// before the evaluation; this predicate backs that cleaning step.
func MeaningfulTokenCount(text string) int {
	n := 0
	for _, tok := range Tokenize(text) {
		if IsURL(tok) || IsMention(tok) {
			continue
		}
		if Normalize(tok) == "" {
			continue
		}
		n++
	}
	return n
}
