package textnorm

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestNormalize(t *testing.T) {
	tests := []struct {
		name, in, want string
	}{
		{"lowercase", "Hello World", "hello world"},
		{"collapse spaces", "a    b\t\tc", "a b c"},
		{"strip punctuation", `"In order to succeed, your desire..."`, "in order to succeed your desire"},
		{"strip symbols", "a*b-c+d/e", "abcde"},
		{"keep digits", "Over 300 people", "over 300 people"},
		{"empty", "", ""},
		{"only punctuation", "*** --- +++", ""},
		{"leading trailing space", "  hi  there  ", "hi there"},
		{"unicode letters", "Café MÜNCHEN", "café münchen"},
		{"newlines and tabs", "a\nb\tc", "a b c"},
		{"hashtag mark stripped", "#quote #success", "quote success"},
		{"mention mark stripped", "@reuters story", "reuters story"},
		{"url mangled but deterministic", "http://t.co/9w2J", "httptco9w2j"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Normalize(tc.in); got != tc.want {
				t.Fatalf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
			}
		})
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	prop := func(s string) bool {
		once := Normalize(s)
		return Normalize(once) == once
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatalf("Normalize not idempotent: %v", err)
	}
}

func TestNormalizeOutputAlphabet(t *testing.T) {
	prop := func(s string) bool {
		out := Normalize(s)
		if strings.Contains(out, "  ") || strings.HasPrefix(out, " ") || strings.HasSuffix(out, " ") {
			return false
		}
		for _, r := range out {
			if r != ' ' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				return false
			}
			if unicode.ToLower(r) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatalf("Normalize output alphabet violated: %v", err)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("  over 300  people ")
	want := []string{"over", "300", "people"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize(\"\") = %v, want empty", got)
	}
}

func TestNormalizedTokens(t *testing.T) {
	got := NormalizedTokens(`"In order to succeed," - Bill Cosby #quote`)
	want := []string{"in", "order", "to", "succeed", "bill", "cosby", "quote"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NormalizedTokens = %v, want %v", got, want)
	}
}

func TestTokenClassifiers(t *testing.T) {
	tests := []struct {
		tok                   string
		url, mention, hashtag bool
	}{
		{"http://t.co/abc", true, false, false},
		{"https://reuters.com/x", true, false, false},
		{"www.cnn.com", true, false, false},
		{"@cnn", false, true, false},
		{"@", false, false, false},
		{"#breaking", false, false, true},
		{"#", false, false, false},
		{"plain", false, false, false},
	}
	for _, tc := range tests {
		if got := IsURL(tc.tok); got != tc.url {
			t.Errorf("IsURL(%q) = %v, want %v", tc.tok, got, tc.url)
		}
		if got := IsMention(tc.tok); got != tc.mention {
			t.Errorf("IsMention(%q) = %v, want %v", tc.tok, got, tc.mention)
		}
		if got := IsHashtag(tc.tok); got != tc.hashtag {
			t.Errorf("IsHashtag(%q) = %v, want %v", tc.tok, got, tc.hashtag)
		}
	}
}

func TestTokensWithOptionsDefaultMatchesRaw(t *testing.T) {
	text := "Breaking: Alibaba IPO filing http://t.co/x #tech @reuters"
	got := TokensWithOptions(text, Options{})
	want := Tokenize(text)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("zero Options should be raw tokens: %v vs %v", got, want)
	}
}

func TestTokensWithOptionsNormalize(t *testing.T) {
	text := "Breaking: Alibaba IPO filing #Tech"
	got := TokensWithOptions(text, Options{Normalize: true})
	want := []string{"breaking", "alibaba", "ipo", "filing", "tech"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokensWithOptionsDropURLs(t *testing.T) {
	text := "story here http://t.co/abc now"
	got := TokensWithOptions(text, Options{DropURLs: true})
	want := []string{"story", "here", "now"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokensWithOptionsExpandURLs(t *testing.T) {
	resolver := func(u string) string { return "reuters.com/article/ferry" }
	text := "story http://t.co/abc"
	got := TokensWithOptions(text, Options{ExpandURLs: resolver})
	want := []string{"story", "reuters.com/article/ferry"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokensWithOptionsWeights(t *testing.T) {
	text := "@cnn reports #breaking news"
	got := TokensWithOptions(text, Options{MentionWeight: 3, HashtagWeight: 2})
	want := []string{"@cnn", "@cnn", "@cnn", "reports", "#breaking", "#breaking", "news"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokensWithOptionsAbbreviations(t *testing.T) {
	text := "thx ppl c u 2day"
	got := TokensWithOptions(text, Options{ExpandAbbreviations: true})
	want := []string{"thanks", "people", "c", "you", "today"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMeaningfulTokenCount(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{
		{"Over 300 people missing", 4},
		{"http://t.co/x @cnn", 0},
		{"*** !!!", 0},
		{"ok http://t.co/x", 1},
		{"", 0},
	}
	for _, tc := range tests {
		if got := MeaningfulTokenCount(tc.in); got != tc.want {
			t.Errorf("MeaningfulTokenCount(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func BenchmarkNormalize(b *testing.B) {
	text := "Alibaba's growth accelerates, U.S. IPO filing expected next week http://t.co/mUcmLJ4cpc #Technology #Reuters"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Normalize(text)
	}
}

func BenchmarkNormalizedTokens(b *testing.B) {
	text := "Alibaba's growth accelerates, U.S. IPO filing expected next week http://t.co/mUcmLJ4cpc #Technology #Reuters"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NormalizedTokens(text)
	}
}
