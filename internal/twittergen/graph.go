package twittergen

import (
	"fmt"
	"math/rand"
)

// GraphConfig parameterizes the synthetic follower graph. The generator
// plants interest communities with internal topic structure:
//
//   - every community has a small *core pool* of identity accounts that all
//     members follow heavily, giving every same-community pair a baseline
//     followee overlap (cosine ≈ 0.2, the weak-similarity band of Figure 9);
//   - every community also has TopicsPerCommunity *topic pools*; each member
//     engages with TopicsPerAuthor of them. Pairs sharing two or more topics
//     cross the strong-similarity threshold (cosine ≥ 0.3, the λa = 0.7
//     edge), and the cohort sharing a specific topic pair forms a bounded
//     clique — which is what keeps the clique edge cover's average clique
//     size near the paper's s ≈ 20 even at the 20,150-author scale, instead
//     of degenerating into community-wide cliques;
//   - a Zipf-popular celebrity tier and uniform random follows provide the
//     heavy-tailed in-degree and the long near-zero similarity tail.
//
// The resulting pairwise-similarity CCDF matches Figure 9 (≈2.3% of pairs at
// ≥ 0.2, ≈0.6% at ≥ 0.3) at every scale, because both the community size and
// the topic cohorts scale with the author count.
type GraphConfig struct {
	// NumAuthors is the number of authors (graph nodes producing posts).
	NumAuthors int
	// CommunitySize is the number of authors per planted community.
	CommunitySize int

	// CorePoolSize is the number of community-identity accounts;
	// CoreFollowsMin/Max bound how many of them each member follows.
	CorePoolSize                   int
	CoreFollowsMin, CoreFollowsMax int

	// TopicsPerCommunity is the number of topic pools per community,
	// TopicPoolSize the accounts per topic pool, TopicsPerAuthor how many
	// distinct topics each member engages with, and
	// TopicFollowsMin/Max how many accounts the member follows per topic.
	TopicsPerCommunity, TopicPoolSize, TopicsPerAuthor int
	TopicFollowsMin, TopicFollowsMax                   int

	// CelebrityCount is the size of the global celebrity tier every author
	// may follow; CelebrityFollows is how many each author follows
	// (Zipf-weighted toward the top). Celebrities are the first
	// CelebrityCount authors themselves, giving the follower graph the
	// heavy-tailed in-degree of real social networks.
	CelebrityCount, CelebrityFollows int
	// RandomFollows is the number of uniform random follows per author,
	// linking communities so BFS sampling can traverse the graph.
	RandomFollows int
	// CoMemberFollowsMax bounds how many same-community authors each author
	// follows (uniform 0..max). Co-member follows are what make users
	// subscribe to clusters of mutually similar authors — the condition
	// under which the multi-user S_* algorithms share components.
	CoMemberFollowsMax int
}

// Validate reports configuration errors.
func (c GraphConfig) Validate() error {
	switch {
	case c.NumAuthors <= 0:
		return fmt.Errorf("twittergen: NumAuthors must be positive, got %d", c.NumAuthors)
	case c.CommunitySize <= 1:
		return fmt.Errorf("twittergen: CommunitySize must be > 1, got %d", c.CommunitySize)
	case c.CorePoolSize <= 0:
		return fmt.Errorf("twittergen: CorePoolSize must be positive, got %d", c.CorePoolSize)
	case c.CoreFollowsMin < 0 || c.CoreFollowsMax < c.CoreFollowsMin:
		return fmt.Errorf("twittergen: bad core follow bounds [%d,%d]", c.CoreFollowsMin, c.CoreFollowsMax)
	case c.CoreFollowsMax > c.CorePoolSize:
		return fmt.Errorf("twittergen: CoreFollowsMax %d exceeds CorePoolSize %d", c.CoreFollowsMax, c.CorePoolSize)
	case c.TopicsPerCommunity <= 0 || c.TopicPoolSize <= 0:
		return fmt.Errorf("twittergen: topic pools must be positive")
	case c.TopicsPerAuthor <= 0 || c.TopicsPerAuthor > c.TopicsPerCommunity:
		return fmt.Errorf("twittergen: TopicsPerAuthor %d outside [1,%d]", c.TopicsPerAuthor, c.TopicsPerCommunity)
	case c.TopicFollowsMin < 0 || c.TopicFollowsMax < c.TopicFollowsMin:
		return fmt.Errorf("twittergen: bad topic follow bounds [%d,%d]", c.TopicFollowsMin, c.TopicFollowsMax)
	case c.TopicFollowsMax > c.TopicPoolSize:
		return fmt.Errorf("twittergen: TopicFollowsMax %d exceeds TopicPoolSize %d", c.TopicFollowsMax, c.TopicPoolSize)
	case c.CelebrityCount < 0 || c.RandomFollows < 0 || c.CelebrityFollows < 0 || c.CoMemberFollowsMax < 0:
		return fmt.Errorf("twittergen: negative follow counts")
	case c.CelebrityFollows > 0 && c.CelebrityCount == 0:
		return fmt.Errorf("twittergen: CelebrityFollows without celebrities")
	case c.CelebrityCount > c.NumAuthors:
		return fmt.Errorf("twittergen: CelebrityCount %d exceeds NumAuthors %d", c.CelebrityCount, c.NumAuthors)
	}
	return nil
}

// DefaultGraphConfig returns a configuration calibrated so the followee
// cosine-similarity CCDF matches Figure 9 at any scale. Same-community
// pairs land near similarity 0.2 via the core pool; pairs sharing ≥2 of the
// community's 12 topics land near 0.3; topic-pair cohorts bound the strong
// cliques to ≈ CommunitySize/11 members.
func DefaultGraphConfig(numAuthors int) GraphConfig {
	community := numAuthors / 40 // ~2.5% of authors per community
	if community < 8 {
		community = 8
	}
	celebs := 50
	if celebs > numAuthors {
		celebs = numAuthors
	}
	return GraphConfig{
		NumAuthors:         numAuthors,
		CommunitySize:      community,
		CorePoolSize:       44,
		CoreFollowsMin:     20,
		CoreFollowsMax:     28,
		TopicsPerCommunity: 9,
		TopicPoolSize:      40,
		TopicsPerAuthor:    3,
		TopicFollowsMin:    20,
		TopicFollowsMax:    30,
		CelebrityCount:     celebs,
		CelebrityFollows:   5,
		RandomFollows:      10,
		CoMemberFollowsMax: 26,
	}
}

// SocialGraph is the generated follower graph: Followees[a] lists the
// account ids author a follows. Account ids 0..NumAuthors-1 are the authors
// themselves (the first CelebrityCount double as the celebrity tier); higher
// ids are non-author accounts (community core and topic pools), exactly as a
// Twitter crawl contains followees outside the sampled author set.
type SocialGraph struct {
	Followees [][]int32
	// Community[a] is the community index of author a.
	Community []int
	// Topics[a] lists the topic indices (within a's community) author a
	// engages with.
	Topics [][]int
	// NumAccounts is the total id universe (authors + pool accounts).
	NumAccounts int
}

// NumCommunities returns the number of planted communities.
func (sg *SocialGraph) NumCommunities() int {
	n := 0
	for _, c := range sg.Community {
		if c+1 > n {
			n = c + 1
		}
	}
	return n
}

// SameCommunity reports whether two authors share a planted community.
func (sg *SocialGraph) SameCommunity(a, b int32) bool {
	return sg.Community[a] == sg.Community[b]
}

// SharedTopics returns how many topics two authors engage with in common
// (zero when they are in different communities).
func (sg *SocialGraph) SharedTopics(a, b int32) int {
	if !sg.SameCommunity(a, b) {
		return 0
	}
	n := 0
	for _, ta := range sg.Topics[a] {
		for _, tb := range sg.Topics[b] {
			if ta == tb {
				n++
			}
		}
	}
	return n
}

// Subscriptions derives the M-SPSD subscription lists from the follower
// graph, as the paper does for Figure 16: every author is also a user, and a
// user's subscriptions are the followees that are themselves authors
// (deduplicated; follows of pool accounts are not subscriptions).
func (sg *SocialGraph) Subscriptions() [][]int32 {
	n := len(sg.Followees)
	subs := make([][]int32, n)
	for a, fs := range sg.Followees {
		seen := make(map[int32]bool, len(fs))
		for _, t := range fs {
			if int(t) < n && !seen[t] {
				seen[t] = true
				subs[a] = append(subs[a], t)
			}
		}
	}
	return subs
}

// GenerateGraph builds the synthetic follower graph.
func GenerateGraph(rng *rand.Rand, cfg GraphConfig) (*SocialGraph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.NumAuthors
	numCommunities := (n + cfg.CommunitySize - 1) / cfg.CommunitySize

	// Id layout: [0,n) authors, then per community a core pool followed by
	// its topic pools.
	poolBase := n
	communityPoolSpan := cfg.CorePoolSize + cfg.TopicsPerCommunity*cfg.TopicPoolSize
	numAccounts := poolBase + numCommunities*communityPoolSpan

	sg := &SocialGraph{
		Followees:   make([][]int32, n),
		Community:   make([]int, n),
		Topics:      make([][]int, n),
		NumAccounts: numAccounts,
	}
	var celebZipf *rand.Zipf
	if cfg.CelebrityCount > 0 {
		celebZipf = rand.NewZipf(rng, 1.2, 1.0, uint64(cfg.CelebrityCount-1))
	}

	for a := 0; a < n; a++ {
		community := a / cfg.CommunitySize
		sg.Community[a] = community
		corePool := poolBase + community*communityPoolSpan
		topicBase := corePool + cfg.CorePoolSize
		commStart := community * cfg.CommunitySize
		commEnd := commStart + cfg.CommunitySize
		if commEnd > n {
			commEnd = n
		}

		var follows []int32
		// Core pool follows: the community-identity accounts.
		k := uniformIn(rng, cfg.CoreFollowsMin, cfg.CoreFollowsMax)
		for _, idx := range rng.Perm(cfg.CorePoolSize)[:k] {
			follows = append(follows, int32(corePool+idx))
		}
		// Topic follows: TopicsPerAuthor distinct topics, a slice of each.
		topics := rng.Perm(cfg.TopicsPerCommunity)[:cfg.TopicsPerAuthor]
		sg.Topics[a] = topics
		for _, topic := range topics {
			pool := topicBase + topic*cfg.TopicPoolSize
			tk := uniformIn(rng, cfg.TopicFollowsMin, cfg.TopicFollowsMax)
			for _, idx := range rng.Perm(cfg.TopicPoolSize)[:tk] {
				follows = append(follows, int32(pool+idx))
			}
		}
		// Celebrity follows, Zipf-weighted toward the global top authors.
		for i := 0; i < cfg.CelebrityFollows; i++ {
			t := int32(celebZipf.Uint64())
			if t != int32(a) {
				follows = append(follows, t)
			}
		}
		// Same-community author follows: the subscriptions that cluster a
		// user's timeline around mutually similar authors.
		if cfg.CoMemberFollowsMax > 0 && commEnd-commStart > 1 {
			for i, m := 0, rng.Intn(cfg.CoMemberFollowsMax+1); i < m; i++ {
				t := int32(commStart + rng.Intn(commEnd-commStart))
				if t != int32(a) {
					follows = append(follows, t)
				}
			}
		}
		// Uniform random follows over the author universe (links communities
		// for BFS reachability; contributes near-zero similarity).
		for i := 0; i < cfg.RandomFollows; i++ {
			t := int32(rng.Intn(n))
			if t != int32(a) {
				follows = append(follows, t)
			}
		}
		sg.Followees[a] = follows
	}
	return sg, nil
}

func uniformIn(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}
