package twittergen

import (
	"fmt"
	"math/rand"
	"strings"

	"firehose/internal/core"
	"firehose/internal/simhash"
)

// LabeledPair is one tweet pair of the user-study reproduction: two texts
// plus the ground-truth redundancy label. In the paper the label came from a
// 3-student majority vote; here it comes from generation provenance — a pair
// is redundant iff the second text was derived from the first by
// information-preserving edits.
type LabeledPair struct {
	TextA, TextB string
	Redundant    bool
}

// PairSetConfig parameterizes labeled-pair generation, mirroring the paper's
// study setup: pairs are bucketed by the Hamming distance of their
// raw-text SimHash fingerprints, with a fixed quota per distance value.
type PairSetConfig struct {
	// PairsPerBucket is the quota per distance value (paper: 100).
	PairsPerBucket int
	// MinDistance/MaxDistance bound the sampled distance range (paper: 3–22).
	MinDistance, MaxDistance int
	// CandidateBudget caps the number of candidate pairs generated while
	// filling buckets; generation stops early once every bucket is full.
	CandidateBudget int
}

// DefaultPairSetConfig reproduces the paper's 2000-pair study: distances 3
// through 22, 100 pairs each.
func DefaultPairSetConfig() PairSetConfig {
	return PairSetConfig{
		PairsPerBucket:  100,
		MinDistance:     3,
		MaxDistance:     22,
		CandidateBudget: 400_000,
	}
}

// Validate reports configuration errors.
func (c PairSetConfig) Validate() error {
	switch {
	case c.PairsPerBucket <= 0:
		return fmt.Errorf("twittergen: PairsPerBucket must be positive")
	case c.MinDistance < 0 || c.MaxDistance > simhash.Size || c.MaxDistance < c.MinDistance:
		return fmt.Errorf("twittergen: bad distance range [%d,%d]", c.MinDistance, c.MaxDistance)
	case c.CandidateBudget <= 0:
		return fmt.Errorf("twittergen: CandidateBudget must be positive")
	}
	return nil
}

// GenerateLabeledPairs produces the study pair set. Three candidate
// populations fill the distance buckets, echoing what random tweet pairs at
// distances 3–22 actually are:
//
//   - derived pairs (redundant): a base tweet plus a lightly edited re-share;
//     light edits land at low distances, heavy edits drift upward;
//   - related pairs (not redundant): two tweets sharing a topical word core
//     but differing in the informative remainder — these populate the
//     mid-to-high distances and pull precision below 1 there;
//   - independent pairs (not redundant): unrelated tweets, almost all beyond
//     distance 22 but occasionally sampled into the top buckets.
//
// Buckets are keyed by the raw-text fingerprint distance, as in the paper's
// selection step; Figure 4 then re-fingerprints the same pairs after
// normalization.
func GenerateLabeledPairs(rng *rand.Rand, vocab *Vocab, cfg PairSetConfig) ([]LabeledPair, error) {
	pairs, _, err := GenerateLabeledPairsShortened(rng, vocab, cfg)
	return pairs, err
}

// GenerateLabeledPairsShortened additionally returns the Shortener that
// issued every URL in the pair set, so preprocessing studies can expand
// them (experiments.PreprocessingStudy reproduces the paper's finding that
// expansion does not significantly change precision/recall).
func GenerateLabeledPairsShortened(rng *rand.Rand, vocab *Vocab, cfg PairSetConfig) ([]LabeledPair, *Shortener, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	sh := NewShortener()
	storyID := 0
	buckets := make(map[int][]LabeledPair)
	need := cfg.MaxDistance - cfg.MinDistance + 1
	full := func() bool {
		filled := 0
		for d := cfg.MinDistance; d <= cfg.MaxDistance; d++ {
			if len(buckets[d]) >= cfg.PairsPerBucket {
				filled++
			}
		}
		return filled == need
	}

	for cand := 0; cand < cfg.CandidateBudget && !full(); cand++ {
		var pair LabeledPair
		switch roll := rng.Float64(); {
		case roll < 0.30: // derived (redundant)
			storyID++
			base := studyTweet(rng, vocab, sh, storyID)
			edits := 1 + rng.Intn(5)
			pair = LabeledPair{
				TextA:     base,
				TextB:     PerturbTextShortened(rng, base, int32(rng.Intn(10000)), edits, sh),
				Redundant: true,
			}
		case roll < 0.70: // related topic, different information (not redundant)
			topic := vocab.Sentence(2 + rng.Intn(2))
			pair = LabeledPair{
				TextA:     mixTweet(rng, vocab, topic),
				TextB:     mixTweet(rng, vocab, topic),
				Redundant: false,
			}
		case roll < 0.85: // same story, different take: heavy word overlap
			// but still carrying different information (not redundant) —
			// e.g. two outlets' headlines for one event. These populate the
			// high-distance buckets and the 0.5–0.7 cosine band, keeping
			// precision below 1 near the threshold as the paper observes.
			topic := vocab.Sentence(5 + rng.Intn(2))
			pair = LabeledPair{
				TextA:     mixTweet(rng, vocab, topic),
				TextB:     mixTweet(rng, vocab, topic),
				Redundant: false,
			}
		default: // independent (not redundant)
			storyID += 2
			pair = LabeledPair{
				TextA:     studyTweet(rng, vocab, sh, storyID-1),
				TextB:     studyTweet(rng, vocab, sh, storyID),
				Redundant: false,
			}
		}
		d := simhash.Distance(core.RawFingerprint(pair.TextA), core.RawFingerprint(pair.TextB))
		if d < cfg.MinDistance || d > cfg.MaxDistance {
			continue
		}
		if len(buckets[d]) < cfg.PairsPerBucket {
			buckets[d] = append(buckets[d], pair)
		}
	}

	var out []LabeledPair
	for d := cfg.MinDistance; d <= cfg.MaxDistance; d++ {
		out = append(out, buckets[d]...)
	}
	return out, sh, nil
}

// studyTweet composes a standalone tweet for the pair study (no social graph
// needed): Zipfian words with the usual microblog decorations. URLs are
// issued through the shortener (nil falls back to unlinked tokens) so that
// expansion studies can resolve them.
func studyTweet(rng *rand.Rand, vocab *Vocab, sh *Shortener, storyID int) string {
	sentence := vocab.Sentence(8 + rng.Intn(9))
	var sb strings.Builder
	sb.WriteString(sentence)
	if rng.Float64() < 0.3 {
		fmt.Fprintf(&sb, " #%s", vocab.WordAt(rng.Intn(min(200, vocab.Size()))))
	}
	if rng.Float64() < 0.25 {
		sb.WriteByte(' ')
		if sh != nil {
			sb.WriteString(sh.Shorten(rng, longURL(strings.Fields(sentence), storyID)))
		} else {
			sb.WriteString(shortURL(rng))
		}
	}
	return sb.String()
}

// mixTweet builds a tweet around a shared topical core: the core words plus
// fresh informative words, shuffled.
func mixTweet(rng *rand.Rand, vocab *Vocab, topicCore string) string {
	words := strings.Fields(topicCore)
	extra := 5 + rng.Intn(6)
	for i := 0; i < extra; i++ {
		words = append(words, vocab.Word())
	}
	rng.Shuffle(len(words), func(i, j int) { words[i], words[j] = words[j], words[i] })
	return strings.Join(words, " ")
}
