package twittergen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Shortener simulates the t.co URL shortener: every share of a long URL gets
// a fresh short token, and the mapping back to the long URL is retained.
// The paper's preprocessing study expanded shortened URLs before
// fingerprinting (and found no significant impact — reproduced by
// experiments.PreprocessingStudy); this substrate gives the study the
// stable long-URL identity that makes expansion meaningful.
type Shortener struct {
	toLong map[string]string
}

// NewShortener returns an empty shortener.
func NewShortener() *Shortener {
	return &Shortener{toLong: make(map[string]string)}
}

// Shorten issues a fresh short URL for the given long URL. Each call
// returns a new token, exactly as re-sharing a story through Twitter does.
func (s *Shortener) Shorten(rng *rand.Rand, long string) string {
	for {
		short := shortURL(rng)
		if _, taken := s.toLong[short]; !taken {
			s.toLong[short] = long
			return short
		}
	}
}

// Expand resolves a short URL to its long form.
func (s *Shortener) Expand(short string) (string, bool) {
	long, ok := s.toLong[short]
	return long, ok
}

// Resolver adapts the shortener to textnorm.Options.ExpandURLs: unknown
// URLs pass through unchanged.
func (s *Shortener) Resolver() func(string) string {
	return func(u string) string {
		if long, ok := s.Expand(u); ok {
			return long
		}
		return u
	}
}

// Len returns the number of issued short URLs.
func (s *Shortener) Len() int { return len(s.toLong) }

// longURL fabricates a plausible article URL for a story identified by its
// leading words.
func longURL(words []string, id int) string {
	slug := "story"
	if len(words) > 0 {
		slug = words[0]
		if len(words) > 1 {
			slug += "-" + words[1]
		}
	}
	return fmt.Sprintf("https://news.example.com/%s/%d", strings.ToLower(slug), id)
}
