package twittergen

import (
	"math/rand"
	"strings"
	"testing"
)

func TestShortenerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sh := NewShortener()
	long := "https://news.example.com/ferry/7"
	s1 := sh.Shorten(rng, long)
	s2 := sh.Shorten(rng, long)
	if s1 == s2 {
		t.Fatal("each share must get a fresh short URL")
	}
	for _, s := range []string{s1, s2} {
		got, ok := sh.Expand(s)
		if !ok || got != long {
			t.Fatalf("Expand(%q) = %q, %v", s, got, ok)
		}
	}
	if _, ok := sh.Expand("http://t.co/unknown"); ok {
		t.Fatal("unknown short URL expanded")
	}
	if sh.Len() != 2 {
		t.Fatalf("Len = %d", sh.Len())
	}
}

func TestShortenerResolver(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sh := NewShortener()
	short := sh.Shorten(rng, "https://example.com/a")
	r := sh.Resolver()
	if r(short) != "https://example.com/a" {
		t.Fatal("resolver failed on known URL")
	}
	if r("http://t.co/zzz") != "http://t.co/zzz" {
		t.Fatal("resolver must pass unknown URLs through")
	}
}

func TestLongURLShape(t *testing.T) {
	u := longURL([]string{"Ferry", "Sinks", "extra"}, 42)
	if !strings.HasPrefix(u, "https://news.example.com/ferry-sinks/42") {
		t.Fatalf("longURL = %q", u)
	}
	if u2 := longURL(nil, 7); !strings.Contains(u2, "story") {
		t.Fatalf("empty-words longURL = %q", u2)
	}
}

func TestPerturbRewritePreservesStory(t *testing.T) {
	// A URL rewrite through the shortener must keep the long URL identity.
	rng := rand.New(rand.NewSource(3))
	sh := NewShortener()
	short := sh.Shorten(rng, "https://news.example.com/storm/9")
	text := "storm knocks out power " + short
	// Force the URL-rewrite edit by trying until the URL token changed.
	for tries := 0; tries < 200; tries++ {
		out := PerturbTextShortened(rng, text, 5, 1, sh)
		for _, tok := range strings.Fields(out) {
			if strings.HasPrefix(tok, "http://t.co/") && tok != short {
				long, ok := sh.Expand(tok)
				if !ok || long != "https://news.example.com/storm/9" {
					t.Fatalf("rewritten URL %q lost story identity: %q %v", tok, long, ok)
				}
				return
			}
		}
	}
	t.Fatal("URL rewrite edit never fired in 200 tries")
}
