package twittergen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"firehose/internal/core"
)

// SimilarityOracle answers author similarity for duplicate injection; the
// experiments pass the precomputed *authorsim.Graph.
type SimilarityOracle interface {
	Similar(a, b int32) bool
}

// Provenance records how a post was generated, giving the ground truth the
// paper obtained from human labeling.
type Provenance struct {
	// Kind classifies the post.
	Kind ProvKind
	// SourceIndex is the index (into Posts) of the post this one duplicates;
	// -1 for fresh posts.
	SourceIndex int
	// Edits is the number of perturbation edits applied (0 for fresh posts).
	Edits int
}

// ProvKind enumerates generation provenances.
type ProvKind int

const (
	// Fresh posts carry new information.
	Fresh ProvKind = iota
	// DupSimilarRecent duplicates a recent post from a similar author — the
	// redundancy the default thresholds prune.
	DupSimilarRecent
	// DupDissimilarRecent duplicates a recent post from a dissimilar author —
	// pruned only if the author dimension is dropped or λa raised.
	DupDissimilarRecent
	// DupSimilarOld duplicates the author's own old post — pruned only if the
	// time dimension is dropped or λt raised.
	DupSimilarOld
)

// String names the provenance kind.
func (k ProvKind) String() string {
	switch k {
	case Fresh:
		return "fresh"
	case DupSimilarRecent:
		return "dup-similar-recent"
	case DupDissimilarRecent:
		return "dup-dissimilar-recent"
	case DupSimilarOld:
		return "dup-similar-old"
	default:
		return fmt.Sprintf("ProvKind(%d)", int(k))
	}
}

// StreamConfig parameterizes the one-day synthetic post stream.
type StreamConfig struct {
	// PostsPerAuthorPerDay is the mean Poisson post rate (paper: ≈10.4
	// before cleaning, ≈10 days-worth across the 20,150 authors).
	PostsPerAuthorPerDay float64
	// DurationMillis is the stream length (default one day).
	DurationMillis int64
	// StartMillis is the timestamp of the stream start.
	StartMillis int64

	// DupProbability is the chance a generated post is a near-duplicate of
	// an earlier post rather than fresh content.
	DupProbability float64
	// Mix of duplicate provenances; must sum to 1.
	SimilarRecentFrac, DissimilarRecentFrac, SimilarOldFrac float64
	// RecentWindowMillis bounds how far back "recent" duplicates look
	// (default 30 min, matching the paper's default λt).
	RecentWindowMillis int64
	// OldMinMillis / OldMaxMillis bound the age of "old" self-duplicates.
	OldMinMillis, OldMaxMillis int64

	// WordsMin/WordsMax bound fresh post length in words.
	WordsMin, WordsMax int
	// URLProb, HashtagProb, MentionProb decorate fresh posts.
	URLProb, HashtagProb, MentionProb float64
}

// DefaultStreamConfig mirrors the paper's dataset scale: one day of posts at
// ~10 posts/author/day with duplicate injection calibrated so the default
// thresholds (λc=18, λt=30min, λa=0.7) prune ≈10% of the stream (Figure 10).
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		PostsPerAuthorPerDay: 10.4,
		DurationMillis:       24 * 60 * 60 * 1000,
		StartMillis:          0,
		DupProbability:       0.14,
		SimilarRecentFrac:    0.70,
		DissimilarRecentFrac: 0.15,
		SimilarOldFrac:       0.15,
		RecentWindowMillis:   30 * 60 * 1000,
		OldMinMillis:         45 * 60 * 1000,
		OldMaxMillis:         4 * 60 * 60 * 1000,
		WordsMin:             8,
		WordsMax:             16,
		URLProb:              0.25,
		HashtagProb:          0.30,
		MentionProb:          0.15,
	}
}

// Validate reports configuration errors.
func (c StreamConfig) Validate() error {
	switch {
	case c.PostsPerAuthorPerDay <= 0:
		return fmt.Errorf("twittergen: PostsPerAuthorPerDay must be positive")
	case c.DurationMillis <= 0:
		return fmt.Errorf("twittergen: DurationMillis must be positive")
	case c.DupProbability < 0 || c.DupProbability > 1:
		return fmt.Errorf("twittergen: DupProbability out of [0,1]")
	case math.Abs(c.SimilarRecentFrac+c.DissimilarRecentFrac+c.SimilarOldFrac-1) > 1e-9:
		return fmt.Errorf("twittergen: duplicate mix must sum to 1")
	case c.WordsMin < 2 || c.WordsMax < c.WordsMin:
		return fmt.Errorf("twittergen: bad word bounds [%d,%d]", c.WordsMin, c.WordsMax)
	case c.RecentWindowMillis <= 0 || c.OldMinMillis <= 0 || c.OldMaxMillis < c.OldMinMillis:
		return fmt.Errorf("twittergen: bad duplicate windows")
	}
	return nil
}

// GeneratedStream bundles the posts (time-ordered) with their provenance.
type GeneratedStream struct {
	Posts      []*core.Post
	Provenance []Provenance
}

// KindCounts tallies posts by provenance kind.
func (gs *GeneratedStream) KindCounts() map[ProvKind]int {
	m := make(map[ProvKind]int)
	for _, p := range gs.Provenance {
		m[p.Kind]++
	}
	return m
}

// diurnalWeight is the relative post intensity by hour of day: a morning
// rise, an evening peak around 20:00 and a deep night trough, approximating
// observed Twitter activity.
func diurnalWeight(hour float64) float64 {
	return 1 + 0.75*math.Cos(2*math.Pi*(hour-20)/24)
}

// sampleTime draws one timestamp in [start, start+duration) under the
// diurnal intensity, by rejection sampling.
func sampleTime(rng *rand.Rand, start, duration int64) int64 {
	const maxW = 1.75
	for {
		off := int64(rng.Float64() * float64(duration))
		hour := math.Mod(float64(off)/3_600_000, 24)
		if rng.Float64()*maxW <= diurnalWeight(hour) {
			return start + off
		}
	}
}

// poisson draws a Poisson variate with the given mean (Knuth's method; the
// means used here are ~10, far below numeric trouble).
func poisson(rng *rand.Rand, mean float64) int {
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// GenerateStream produces one day of posts for the authors of sg. The sim
// oracle (usually the λa author similarity graph) steers duplicate injection:
// "similar" duplicates reuse content from an author the oracle deems similar,
// so the diversification model can prune them.
func GenerateStream(rng *rand.Rand, sg *SocialGraph, sim SimilarityOracle, vocab *Vocab, cfg StreamConfig) (*GeneratedStream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Schedule: per-author Poisson counts, diurnal arrival times.
	type slot struct {
		author int32
		time   int64
	}
	var slots []slot
	for a := range sg.Followees {
		n := poisson(rng, cfg.PostsPerAuthorPerDay)
		for i := 0; i < n; i++ {
			slots = append(slots, slot{
				author: int32(a),
				time:   sampleTime(rng, cfg.StartMillis, cfg.DurationMillis),
			})
		}
	}
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].time != slots[j].time {
			return slots[i].time < slots[j].time
		}
		return slots[i].author < slots[j].author
	})

	gs := &GeneratedStream{
		Posts:      make([]*core.Post, 0, len(slots)),
		Provenance: make([]Provenance, 0, len(slots)),
	}
	byAuthor := make(map[int32][]int) // author → indices of their posts

	for i, s := range slots {
		text, prov := gs.composePost(rng, sg, sim, vocab, cfg, s.author, s.time, byAuthor)
		gs.Posts = append(gs.Posts, core.NewPost(uint64(i+1), s.author, s.time, text))
		gs.Provenance = append(gs.Provenance, prov)
		byAuthor[s.author] = append(byAuthor[s.author], i)
	}
	return gs, nil
}

// composePost decides fresh-vs-duplicate and builds the text.
func (gs *GeneratedStream) composePost(rng *rand.Rand, sg *SocialGraph, sim SimilarityOracle, vocab *Vocab, cfg StreamConfig, author int32, now int64, byAuthor map[int32][]int) (string, Provenance) {
	if rng.Float64() < cfg.DupProbability && len(gs.Posts) > 0 {
		roll := rng.Float64()
		switch {
		case roll < cfg.SimilarRecentFrac:
			if src := gs.findRecent(rng, sim, cfg, author, now, true); src >= 0 {
				text, edits := gs.perturb(rng, src)
				return text, Provenance{Kind: DupSimilarRecent, SourceIndex: src, Edits: edits}
			}
		case roll < cfg.SimilarRecentFrac+cfg.DissimilarRecentFrac:
			if src := gs.findRecent(rng, sim, cfg, author, now, false); src >= 0 {
				text, edits := gs.perturb(rng, src)
				return text, Provenance{Kind: DupDissimilarRecent, SourceIndex: src, Edits: edits}
			}
		default:
			if src := gs.findOldSelf(rng, cfg, author, now, byAuthor); src >= 0 {
				text, edits := gs.perturb(rng, src)
				return text, Provenance{Kind: DupSimilarOld, SourceIndex: src, Edits: edits}
			}
		}
		// No suitable source yet — fall through to fresh content.
	}
	return gs.freshText(rng, vocab, cfg, author, sg), Provenance{Kind: Fresh, SourceIndex: -1}
}

// findRecent scans backwards over the recent window for a source post whose
// author similarity to `author` matches wantSimilar. The scan is capped so a
// dense stream cannot degrade generation to quadratic time.
func (gs *GeneratedStream) findRecent(rng *rand.Rand, sim SimilarityOracle, cfg StreamConfig, author int32, now int64, wantSimilar bool) int {
	const scanCap = 4000
	cutoff := now - cfg.RecentWindowMillis
	// Start from a small random offset so repeated duplicates do not all
	// pick the single most recent post.
	i := len(gs.Posts) - 1 - rng.Intn(min(8, len(gs.Posts)))
	for scanned := 0; i >= 0 && scanned < scanCap; i, scanned = i-1, scanned+1 {
		p := gs.Posts[i]
		if p.Time < cutoff {
			break
		}
		if sim.Similar(author, p.Author) == wantSimilar {
			return i
		}
	}
	return -1
}

// findOldSelf picks one of the author's own posts aged between OldMin and
// OldMax, if any.
func (gs *GeneratedStream) findOldSelf(rng *rand.Rand, cfg StreamConfig, author int32, now int64, byAuthor map[int32][]int) int {
	idxs := byAuthor[author]
	var eligible []int
	for _, i := range idxs {
		age := now - gs.Posts[i].Time
		if age >= cfg.OldMinMillis && age <= cfg.OldMaxMillis {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		return -1
	}
	return eligible[rng.Intn(len(eligible))]
}

// freshText composes an original post: Zipfian words, optionally decorated
// with a hashtag, a mention of a followed account, and a shortened URL.
func (gs *GeneratedStream) freshText(rng *rand.Rand, vocab *Vocab, cfg StreamConfig, author int32, sg *SocialGraph) string {
	n := cfg.WordsMin + rng.Intn(cfg.WordsMax-cfg.WordsMin+1)
	var sb strings.Builder
	sb.WriteString(vocab.Sentence(n))
	if rng.Float64() < cfg.MentionProb {
		if f := sg.Followees[author]; len(f) > 0 {
			fmt.Fprintf(&sb, " @acct%d", f[rng.Intn(len(f))])
		}
	}
	if rng.Float64() < cfg.HashtagProb {
		fmt.Fprintf(&sb, " #%s", vocab.WordAt(rng.Intn(min(200, vocab.Size()))))
	}
	if rng.Float64() < cfg.URLProb {
		sb.WriteByte(' ')
		sb.WriteString(shortURL(rng))
	}
	return sb.String()
}

// perturb derives near-duplicate text from the source post, applying 1–3
// information-preserving microblog edits: re-shortened URLs, an "RT @user:"
// prefix, case toggling, punctuation, a dropped trailing word or an added
// hashtag. The edit count is returned for the provenance record; heavier
// edits drift further in SimHash space, which is what gives the
// precision/recall curves of Figures 3–4 their shape.
func (gs *GeneratedStream) perturb(rng *rand.Rand, src int) (string, int) {
	source := gs.Posts[src]
	edits := 1 + rng.Intn(3)
	return PerturbText(rng, source.Text, source.Author, edits), edits
}

// PerturbText applies `edits` information-preserving microblog edits to a
// post text: URL re-shortening, an "RT @user:" prefix, case toggling,
// punctuation decoration, trailing-word truncation, an echoed hashtag, a
// typo, or an elided word. It is exported for the labeled-pair generator,
// which uses the same edit model to stand in for the paper's human-labeled
// near-duplicates. Case and punctuation edits vanish under normalization;
// token-level edits (URLs, truncation, typos, hashtags) survive it, which is
// what separates the Figure 3 and Figure 4 curves.
func PerturbText(rng *rand.Rand, text string, sourceAuthor int32, edits int) string {
	return PerturbTextShortened(rng, text, sourceAuthor, edits, nil)
}

// PerturbTextShortened is PerturbText with a Shortener: URL rewrites then
// re-shorten the *same* long URL (a genuine re-share), rather than
// fabricating an unrelated short URL. Pass nil to fall back to unrelated
// tokens.
func PerturbTextShortened(rng *rand.Rand, text string, sourceAuthor int32, edits int, sh *Shortener) string {
	for e := 0; e < edits; e++ {
		switch rng.Intn(8) {
		case 0: // rewrite every shortened URL (Twitter re-shortens per share)
			text = rewriteURLs(rng, text, sh)
		case 1: // quote prefix
			if !strings.HasPrefix(text, "RT ") {
				text = fmt.Sprintf("RT @acct%d: %s", sourceAuthor, text)
			}
		case 2: // case toggling (raw fingerprints move, normalized do not)
			text = toggleCase(rng, text)
		case 3: // punctuation decoration
			text = `"` + strings.TrimSuffix(text, ".") + `."`
		case 4: // drop the trailing word
			if fields := strings.Fields(text); len(fields) > 3 {
				text = strings.Join(fields[:len(fields)-1], " ")
			}
		case 5: // append a hashtag echoing a word of the post
			if fields := strings.Fields(text); len(fields) > 0 {
				text += " #" + strings.Trim(fields[rng.Intn(len(fields))], `"#@.:`)
			}
		case 6: // typo: double a letter inside one word
			fields := strings.Fields(text)
			if i := pickPlainWord(rng, fields); i >= 0 {
				w := fields[i]
				pos := 1 + rng.Intn(len(w)-1)
				fields[i] = w[:pos] + w[pos-1:pos] + w[pos:]
				text = strings.Join(fields, " ")
			}
		case 7: // elide a random interior word
			if fields := strings.Fields(text); len(fields) > 4 {
				i := 1 + rng.Intn(len(fields)-2)
				text = strings.Join(append(fields[:i:i], fields[i+1:]...), " ")
			}
		}
	}
	return text
}

// pickPlainWord returns the index of a random non-URL, non-mention,
// non-hashtag word of length >= 2, or -1 if none exists.
func pickPlainWord(rng *rand.Rand, fields []string) int {
	start := rng.Intn(len(fields) + 1)
	for off := 0; off < len(fields); off++ {
		i := (start + off) % len(fields)
		w := fields[i]
		if len(w) >= 2 && !strings.HasPrefix(w, "http") && w[0] != '@' && w[0] != '#' {
			return i
		}
	}
	return -1
}

func rewriteURLs(rng *rand.Rand, text string, sh *Shortener) string {
	fields := strings.Fields(text)
	changed := false
	for i, f := range fields {
		if strings.HasPrefix(f, "http://t.co/") {
			if sh != nil {
				if long, ok := sh.Expand(f); ok {
					fields[i] = sh.Shorten(rng, long)
					changed = true
					continue
				}
			}
			fields[i] = shortURL(rng)
			changed = true
		}
	}
	if !changed {
		return text + " " + shortURL(rng)
	}
	return strings.Join(fields, " ")
}

func toggleCase(rng *rand.Rand, text string) string {
	fields := strings.Fields(text)
	for i := range fields {
		if rng.Float64() < 0.3 && !strings.HasPrefix(fields[i], "http") {
			if rng.Intn(2) == 0 {
				fields[i] = strings.ToUpper(fields[i])
			} else {
				fields[i] = titleCase(fields[i])
			}
		}
	}
	return strings.Join(fields, " ")
}

func titleCase(w string) string {
	if w == "" {
		return w
	}
	return strings.ToUpper(w[:1]) + w[1:]
}
