package twittergen

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"firehose/internal/authorsim"
	"firehose/internal/core"
	"firehose/internal/simhash"
	"firehose/internal/textnorm"
)

func TestVocabDeterministic(t *testing.T) {
	a := NewVocab(rand.New(rand.NewSource(1)), 100)
	b := NewVocab(rand.New(rand.NewSource(1)), 100)
	for i := 0; i < 100; i++ {
		if a.WordAt(i) != b.WordAt(i) {
			t.Fatalf("vocab not deterministic at %d", i)
		}
	}
	if a.Size() != 100 {
		t.Fatalf("Size = %d", a.Size())
	}
}

func TestVocabUniqueWords(t *testing.T) {
	v := NewVocab(rand.New(rand.NewSource(2)), 500)
	seen := map[string]bool{}
	for i := 0; i < v.Size(); i++ {
		w := v.WordAt(i)
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		if w == "" {
			t.Fatal("empty word")
		}
		seen[w] = true
	}
}

func TestVocabZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := NewVocab(rng, 1000)
	counts := map[string]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[v.Word()]++
	}
	// The most frequent word should far exceed the uniform share while not
	// dominating outright (the head is damped so unrelated tweets stay far
	// apart in SimHash space).
	uniform := draws / v.Size()
	if counts[v.WordAt(0)] < 15*uniform {
		t.Fatalf("top word count %d too small for Zipf (uniform share %d)",
			counts[v.WordAt(0)], uniform)
	}
	if counts[v.WordAt(0)] > draws/5 {
		t.Fatalf("top word count %d too dominant", counts[v.WordAt(0)])
	}
}

func TestVocabPanicsOnTinySize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVocab(rand.New(rand.NewSource(1)), 1)
}

func TestSentenceLength(t *testing.T) {
	v := NewVocab(rand.New(rand.NewSource(4)), 50)
	s := v.Sentence(7)
	if got := len(strings.Fields(s)); got != 7 {
		t.Fatalf("Sentence words = %d, want 7", got)
	}
}

func TestShortURLShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	u1, u2 := shortURL(rng), shortURL(rng)
	if !strings.HasPrefix(u1, "http://t.co/") || len(u1) != len("http://t.co/")+10 {
		t.Fatalf("bad URL %q", u1)
	}
	if u1 == u2 {
		t.Fatal("URLs should be distinct per share")
	}
	if !textnorm.IsURL(u1) {
		t.Fatal("shortURL must classify as URL")
	}
}

func TestGraphConfigValidate(t *testing.T) {
	good := DefaultGraphConfig(1000)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	base := DefaultGraphConfig(100)
	mutate := func(f func(*GraphConfig)) GraphConfig {
		c := base
		f(&c)
		return c
	}
	bad := []GraphConfig{
		{},
		mutate(func(c *GraphConfig) { c.CommunitySize = 1 }),
		mutate(func(c *GraphConfig) { c.CorePoolSize = 0 }),
		mutate(func(c *GraphConfig) { c.CoreFollowsMin = 5; c.CoreFollowsMax = 3 }),
		mutate(func(c *GraphConfig) { c.CoreFollowsMax = c.CorePoolSize + 1 }),
		mutate(func(c *GraphConfig) { c.TopicsPerCommunity = 0 }),
		mutate(func(c *GraphConfig) { c.TopicsPerAuthor = c.TopicsPerCommunity + 1 }),
		mutate(func(c *GraphConfig) { c.TopicFollowsMax = c.TopicPoolSize + 1 }),
		mutate(func(c *GraphConfig) { c.TopicFollowsMin = 9; c.TopicFollowsMax = 8 }),
		mutate(func(c *GraphConfig) { c.RandomFollows = -1 }),
		mutate(func(c *GraphConfig) { c.CelebrityCount = 0 }),
		mutate(func(c *GraphConfig) { c.CelebrityCount = 1000 }),
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestGenerateGraphShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := DefaultGraphConfig(400)
	sg, err := GenerateGraph(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sg.Followees) != 400 || len(sg.Community) != 400 {
		t.Fatalf("sizes: %d followees, %d communities", len(sg.Followees), len(sg.Community))
	}
	if sg.NumCommunities() < 2 {
		t.Fatalf("expected multiple communities, got %d", sg.NumCommunities())
	}
	minFollows := cfg.CoreFollowsMin + cfg.TopicsPerAuthor*cfg.TopicFollowsMin
	for a, fs := range sg.Followees {
		if len(fs) < minFollows {
			t.Fatalf("author %d follows only %d accounts", a, len(fs))
		}
		for _, f := range fs {
			if f < 0 || int(f) >= sg.NumAccounts {
				t.Fatalf("followee %d out of universe [0,%d)", f, sg.NumAccounts)
			}
			if f == int32(a) {
				t.Fatalf("author %d follows itself", a)
			}
		}
	}
	if !sg.SameCommunity(0, 1) {
		t.Fatal("adjacent ids share a community under block layout")
	}
	if sg.SameCommunity(0, 399) {
		t.Fatal("first and last authors should differ in community")
	}
}

func TestGenerateGraphDeterministic(t *testing.T) {
	cfg := DefaultGraphConfig(200)
	a, _ := GenerateGraph(rand.New(rand.NewSource(7)), cfg)
	b, _ := GenerateGraph(rand.New(rand.NewSource(7)), cfg)
	if !reflect.DeepEqual(a.Followees, b.Followees) {
		t.Fatal("graph generation not deterministic")
	}
}

// TestSimilarityCalibration checks the Figure 9 shape on a mid-size graph:
// roughly 2.3% of author pairs at similarity >= 0.2 and 0.6% at >= 0.3,
// with generous bands since the targets are fractions of all pairs.
func TestSimilarityCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sg, err := GenerateGraph(rng, DefaultGraphConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	v := authorsim.NewVectors(sg.Followees)
	ccdf := v.SimilarityCCDF([]float64{0.2, 0.3})
	if ccdf[0] < 0.012 || ccdf[0] > 0.04 {
		t.Fatalf("fraction >= 0.2 is %.4f, want ~0.023", ccdf[0])
	}
	if ccdf[1] < 0.002 || ccdf[1] > 0.015 {
		t.Fatalf("fraction >= 0.3 is %.4f, want ~0.006", ccdf[1])
	}
	// Same-community pairs should carry essentially all the similarity mass.
	pairs := v.PairsAbove(0.2)
	cross := 0
	for _, p := range pairs {
		if !sg.SameCommunity(p.A, p.B) {
			cross++
		}
	}
	if cross > len(pairs)/10 {
		t.Fatalf("%d of %d similar pairs cross communities", cross, len(pairs))
	}
}

func TestStreamConfigValidate(t *testing.T) {
	if err := DefaultStreamConfig().Validate(); err != nil {
		t.Fatalf("default stream config invalid: %v", err)
	}
	bad := DefaultStreamConfig()
	bad.SimilarRecentFrac = 0.5 // mix no longer sums to 1
	if err := bad.Validate(); err == nil {
		t.Fatal("bad mix accepted")
	}
	bad = DefaultStreamConfig()
	bad.WordsMin = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("WordsMin=1 accepted")
	}
	bad = DefaultStreamConfig()
	bad.DupProbability = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("DupProbability=1.5 accepted")
	}
}

// smallScenario generates a small but fully wired dataset for stream tests.
func smallScenario(t *testing.T, seed int64, nAuthors int) (*SocialGraph, *authorsim.Graph, *GeneratedStream) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sg, err := GenerateGraph(rng, DefaultGraphConfig(nAuthors))
	if err != nil {
		t.Fatal(err)
	}
	g := authorsim.BuildGraph(authorsim.NewVectors(sg.Followees), 0.7)
	vocab := NewVocab(rng, 3000)
	cfg := DefaultStreamConfig()
	gs, err := GenerateStream(rng, sg, g, vocab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sg, g, gs
}

func TestGenerateStreamBasics(t *testing.T) {
	_, _, gs := smallScenario(t, 9, 300)
	cfg := DefaultStreamConfig()
	if len(gs.Posts) != len(gs.Provenance) {
		t.Fatal("posts/provenance length mismatch")
	}
	// Expected volume: 300 authors × ~10.4 posts.
	if n := len(gs.Posts); n < 2400 || n > 3900 {
		t.Fatalf("post count %d far from 300×10.4", n)
	}
	last := int64(-1)
	for i, p := range gs.Posts {
		if p.Time < last {
			t.Fatalf("posts out of time order at %d", i)
		}
		last = p.Time
		if p.Time < cfg.StartMillis || p.Time >= cfg.StartMillis+cfg.DurationMillis {
			t.Fatalf("post %d outside the day window: %d", i, p.Time)
		}
		if p.ID != uint64(i+1) {
			t.Fatalf("post %d has ID %d", i, p.ID)
		}
		if p.FP == 0 {
			t.Fatalf("post %d missing fingerprint", i)
		}
		if len(strings.Fields(p.Text)) < 2 {
			t.Fatalf("post %d text too short: %q", i, p.Text)
		}
	}
}

func TestGenerateStreamDeterministic(t *testing.T) {
	_, _, a := smallScenario(t, 10, 200)
	_, _, b := smallScenario(t, 10, 200)
	if len(a.Posts) != len(b.Posts) {
		t.Fatal("stream lengths differ across identical seeds")
	}
	for i := range a.Posts {
		if a.Posts[i].Text != b.Posts[i].Text || a.Posts[i].Time != b.Posts[i].Time {
			t.Fatalf("stream not deterministic at %d", i)
		}
	}
}

func TestStreamProvenanceMix(t *testing.T) {
	_, g, gs := smallScenario(t, 11, 500)
	counts := gs.KindCounts()
	total := len(gs.Posts)
	dups := total - counts[Fresh]
	// DupProbability 0.14 with fallbacks to fresh: expect 5–15% duplicates.
	if frac := float64(dups) / float64(total); frac < 0.05 || frac > 0.16 {
		t.Fatalf("duplicate fraction %.3f out of expected band", frac)
	}
	if counts[DupSimilarRecent] == 0 || counts[DupSimilarOld] == 0 || counts[DupDissimilarRecent] == 0 {
		t.Fatalf("missing provenance kinds: %v", counts)
	}

	cfg := DefaultStreamConfig()
	for i, prov := range gs.Provenance {
		switch prov.Kind {
		case Fresh:
			if prov.SourceIndex != -1 {
				t.Fatalf("fresh post %d has source", i)
			}
		default:
			src := prov.SourceIndex
			if src < 0 || src >= i {
				t.Fatalf("post %d has bad source %d", i, src)
			}
			age := gs.Posts[i].Time - gs.Posts[src].Time
			switch prov.Kind {
			case DupSimilarRecent:
				if age > cfg.RecentWindowMillis {
					t.Fatalf("recent dup %d aged %dms", i, age)
				}
				if !g.Similar(gs.Posts[i].Author, gs.Posts[src].Author) {
					t.Fatalf("similar-recent dup %d from dissimilar author", i)
				}
			case DupDissimilarRecent:
				if g.Similar(gs.Posts[i].Author, gs.Posts[src].Author) {
					t.Fatalf("dissimilar-recent dup %d from similar author", i)
				}
			case DupSimilarOld:
				if age < cfg.OldMinMillis || age > cfg.OldMaxMillis {
					t.Fatalf("old dup %d aged %dms", i, age)
				}
				if gs.Posts[i].Author != gs.Posts[src].Author {
					t.Fatalf("old dup %d not a self-duplicate", i)
				}
			}
			if prov.Edits < 1 || prov.Edits > 3 {
				t.Fatalf("dup %d has %d edits", i, prov.Edits)
			}
		}
	}
}

// TestStreamPruneRatio checks the Figure 10 headline: the default thresholds
// prune roughly 10% of the stream.
func TestStreamPruneRatio(t *testing.T) {
	_, g, gs := smallScenario(t, 12, 500)
	th := core.Thresholds{LambdaC: 18, LambdaT: 30 * 60 * 1000, LambdaA: 0.7}
	d := core.NewUniBin(g, th)
	core.Run(d, gs.Posts)
	ratio := d.Counters().PruneRatio()
	if ratio < 0.05 || ratio > 0.16 {
		t.Fatalf("prune ratio %.3f, want ≈0.10", ratio)
	}
}

func TestPerturbTextKeepsDistanceSmallNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	v := NewVocab(rng, 2000)
	within := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		base := studyTweet(rng, v, nil, 0)
		edited := PerturbText(rng, base, 42, 1+rng.Intn(2))
		d := simhash.Distance(core.Fingerprint(base), core.Fingerprint(edited))
		if d <= 18 {
			within++
		}
	}
	if within < trials*80/100 {
		t.Fatalf("only %d/%d lightly edited pairs within λc=18", within, trials)
	}
}

func TestIndependentTweetsFarApart(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	v := NewVocab(rng, 3000)
	sum, minD := 0, 64
	const trials = 500
	for i := 0; i < trials; i++ {
		d := simhash.Distance(
			core.Fingerprint(studyTweet(rng, v, nil, 0)),
			core.Fingerprint(studyTweet(rng, v, nil, 0)))
		sum += d
		if d < minD {
			minD = d
		}
	}
	mean := float64(sum) / trials
	if mean < 28 || mean > 36 {
		t.Fatalf("independent tweet mean distance %.1f, want ≈32 (Figure 2)", mean)
	}
	if minD <= 10 {
		t.Fatalf("independent tweets got as close as %d bits", minD)
	}
}

func TestGenerateLabeledPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	v := NewVocab(rng, 3000)
	cfg := PairSetConfig{PairsPerBucket: 20, MinDistance: 3, MaxDistance: 22, CandidateBudget: 200_000}
	pairs, err := GenerateLabeledPairs(rng, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) < 15*20 {
		t.Fatalf("only %d pairs generated", len(pairs))
	}
	red := 0
	for _, p := range pairs {
		d := simhash.Distance(core.RawFingerprint(p.TextA), core.RawFingerprint(p.TextB))
		if d < cfg.MinDistance || d > cfg.MaxDistance {
			t.Fatalf("pair at distance %d outside [%d,%d]", d, cfg.MinDistance, cfg.MaxDistance)
		}
		if p.Redundant {
			red++
		}
	}
	// The paper found 949/2000 redundant; require a substantial mix.
	if red < len(pairs)/5 || red > len(pairs)*4/5 {
		t.Fatalf("redundant fraction %d/%d too skewed", red, len(pairs))
	}
}

func TestGenerateLabeledPairsLowBucketsAreRedundant(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	v := NewVocab(rng, 3000)
	cfg := PairSetConfig{PairsPerBucket: 30, MinDistance: 3, MaxDistance: 22, CandidateBudget: 300_000}
	pairs, _ := GenerateLabeledPairs(rng, v, cfg)
	lowRed, lowTotal := 0, 0
	highRed, highTotal := 0, 0
	for _, p := range pairs {
		d := simhash.Distance(core.RawFingerprint(p.TextA), core.RawFingerprint(p.TextB))
		if d <= 8 {
			lowTotal++
			if p.Redundant {
				lowRed++
			}
		} else if d >= 19 {
			highTotal++
			if p.Redundant {
				highRed++
			}
		}
	}
	if lowTotal == 0 || highTotal == 0 {
		t.Fatal("buckets not populated")
	}
	if float64(lowRed)/float64(lowTotal) < 0.85 {
		t.Fatalf("low buckets should be mostly redundant: %d/%d", lowRed, lowTotal)
	}
	if float64(highRed)/float64(highTotal) > 0.6 {
		t.Fatalf("high buckets should be mostly non-redundant: %d/%d", highRed, highTotal)
	}
}

func TestPairSetConfigValidate(t *testing.T) {
	if err := DefaultPairSetConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	for _, bad := range []PairSetConfig{
		{PairsPerBucket: 0, MinDistance: 3, MaxDistance: 22, CandidateBudget: 10},
		{PairsPerBucket: 1, MinDistance: -1, MaxDistance: 22, CandidateBudget: 10},
		{PairsPerBucket: 1, MinDistance: 5, MaxDistance: 4, CandidateBudget: 10},
		{PairsPerBucket: 1, MinDistance: 3, MaxDistance: 22, CandidateBudget: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("bad config accepted: %+v", bad)
		}
	}
}

func TestProvKindString(t *testing.T) {
	for k, want := range map[ProvKind]string{
		Fresh:               "fresh",
		DupSimilarRecent:    "dup-similar-recent",
		DupDissimilarRecent: "dup-dissimilar-recent",
		DupSimilarOld:       "dup-similar-old",
		ProvKind(9):         "ProvKind(9)",
	} {
		if got := k.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
}

func TestDiurnalWeightShape(t *testing.T) {
	peak := diurnalWeight(20)
	trough := diurnalWeight(8)
	if peak <= trough {
		t.Fatalf("peak %v should exceed trough %v", peak, trough)
	}
	for h := 0.0; h < 24; h += 0.5 {
		w := diurnalWeight(h)
		if w <= 0 || w > 1.75 {
			t.Fatalf("weight %v at hour %v outside (0, 1.75]", w, h)
		}
	}
}
