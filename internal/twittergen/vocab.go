// Package twittergen is the dataset substrate of this reproduction. The
// paper evaluates on crawled Twitter data — a 660k-author follower graph
// BFS-sampled to 20,150 authors, 233,311 tweets from one day, and 2,000
// human-labeled tweet pairs. None of that is redistributable, so this
// package synthesizes the closest equivalents with the statistical
// properties the algorithms are sensitive to (see DESIGN.md §5):
//
//   - a community-structured follower graph whose followee-cosine similarity
//     CCDF matches Figure 9 (≈2.3% of pairs ≥ 0.2, ≈0.6% ≥ 0.3),
//   - a one-day post stream with per-author Poisson arrivals, diurnal rate
//     modulation and near-duplicate injection (re-shares with rewritten
//     shortened URLs, quote prefixes, case/punctuation edits) calibrated so
//     the default thresholds prune ≈10% of posts (Figure 10),
//   - provenance-labeled tweet pairs standing in for the user study behind
//     Figures 3 and 4 (ground truth from generation instead of majority
//     vote).
//
// Everything is driven by a seeded *rand.Rand, so every experiment is
// reproducible bit for bit.
package twittergen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Vocab is a deterministic pseudo-English vocabulary with a Zipfian unigram
// distribution, used to compose tweet texts. Zipfian token frequencies are
// what make independent tweets share stop-words while remaining far apart in
// SimHash space, matching the mean-32 Hamming distribution of Figure 2.
type Vocab struct {
	words []string
	zipf  *rand.Zipf
}

var syllables = []string{
	"ba", "co", "di", "fu", "ga", "he", "ji", "ka", "lo", "mu",
	"na", "po", "qui", "ra", "se", "ti", "vo", "wa", "xe", "zo",
	"bra", "cle", "dri", "flo", "gru", "pla", "sta", "tre", "vin", "sho",
}

// NewVocab builds a vocabulary of size words. The sampling distribution is
// Zipf with exponent 1.2 and offset 20 — a skewed head that still leaves
// independent tweets ~30 bits apart in SimHash space, matching the Figure 2
// distribution (a heavier head makes unrelated tweets collide under λc=18,
// which real tweets do not). rng drives both word shapes and the sampling
// distribution; use a dedicated source so vocabulary contents do not depend
// on how many samples other components draw.
func NewVocab(rng *rand.Rand, size int) *Vocab {
	if size < 2 {
		panic(fmt.Sprintf("twittergen: vocabulary size must be >= 2, got %d", size))
	}
	v := &Vocab{words: make([]string, size)}
	seen := make(map[string]bool, size)
	for i := range v.words {
		for {
			var sb strings.Builder
			n := 2 + rng.Intn(3)
			for j := 0; j < n; j++ {
				sb.WriteString(syllables[rng.Intn(len(syllables))])
			}
			w := sb.String()
			if !seen[w] {
				seen[w] = true
				v.words[i] = w
				break
			}
		}
	}
	v.zipf = rand.NewZipf(rng, 1.2, 20.0, uint64(size-1))
	return v
}

// Size returns the number of distinct words.
func (v *Vocab) Size() int { return len(v.words) }

// Word samples one word from the Zipfian distribution.
func (v *Vocab) Word() string { return v.words[v.zipf.Uint64()] }

// WordAt returns the i-th most frequent word (rank 0 is the most frequent).
func (v *Vocab) WordAt(i int) string { return v.words[i] }

// Sentence samples n words joined by single spaces.
func (v *Vocab) Sentence(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = v.Word()
	}
	return strings.Join(parts, " ")
}

// shortURL fabricates a t.co-style shortened URL. Twitter assigns a fresh
// token per share, so two shares of the same story carry different URLs —
// the exact near-duplicate pattern of the paper's Table 1 first row.
func shortURL(rng *rand.Rand) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	var sb strings.Builder
	sb.WriteString("http://t.co/")
	for i := 0; i < 10; i++ {
		sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return sb.String()
}
