package twittergen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"firehose/internal/core"
)

// This file is the adversarial-workload DSL: a declarative Workload spec
// (JSON-parseable, strictly validated) plus composable generators that layer
// hostile stream shapes over the well-behaved background traffic of
// GenerateStream. The paper's evaluation streams calibrated Twitter-like
// traffic; a production diversifier also has to survive the shapes that
// traffic never takes — flash crowds, celebrity cascades, bot floods,
// intensity whiplash, and a follow graph that refuses to stay frozen.

// EventKind names one adversarial stream shape.
type EventKind string

const (
	// FlashCrowd models one breaking event: a burst of near-duplicate posts
	// (perturbations of a single seed text) from many distinct authors at a
	// fixed aggregate rate.
	FlashCrowd EventKind = "flash-crowd"
	// CelebrityCascade models a Zipf-head author's post fanning out: the head
	// posts once, then a retweet wave of perturbed copies follows from many
	// authors.
	CelebrityCascade EventKind = "celebrity-cascade"
	// Botnet models a coordinated campaign: byte-identical text — identical
	// SimHash fingerprints — posted by disjoint authors, the shape that
	// content-only dedup catches trivially but the author dimension must not
	// let through twice per similar-author clique.
	Botnet EventKind = "botnet"
	// DiurnalWhiplash modulates extra background-shaped traffic with a
	// sinusoid, swinging the arrival rate between near-silence and a
	// multiple of the mean within each period — the λt window fills and
	// drains violently.
	DiurnalWhiplash EventKind = "diurnal-whiplash"
	// GraphChurn emits no posts: it schedules followee-set rewrites
	// (authorsim.MutableVectors.SetFollowees material) that shrink, grow or
	// rewire random authors' follow lists mid-stream.
	GraphChurn EventKind = "graph-churn"
)

// EventKinds lists every kind the DSL accepts, in canonical order.
func EventKinds() []EventKind {
	return []EventKind{FlashCrowd, CelebrityCascade, Botnet, DiurnalWhiplash, GraphChurn}
}

func validEventKind(k EventKind) bool {
	switch k {
	case FlashCrowd, CelebrityCascade, Botnet, DiurnalWhiplash, GraphChurn:
		return true
	}
	return false
}

// Event is one scheduled adversarial episode inside a Workload. Times are
// relative to the workload start. Which fields are meaningful depends on
// Kind; Validate rejects a field set outside its kind's schema, so a spec
// cannot silently carry knobs its kind ignores.
type Event struct {
	// Kind selects the shape; see the EventKind constants.
	Kind EventKind `json:"kind"`
	// AtMillis is the event onset, relative to the workload start.
	AtMillis int64 `json:"at_millis"`
	// DurationMillis is the event length.
	DurationMillis int64 `json:"duration_millis"`

	// PostsPerMinute is the aggregate event post rate (mean rate for
	// diurnal-whiplash, whose instantaneous rate oscillates around it).
	// Used by every kind except graph-churn.
	PostsPerMinute float64 `json:"posts_per_minute,omitempty"`
	// Authors is the number of distinct participating authors (flash-crowd
	// posters, cascade retweeters, botnet accounts).
	Authors int `json:"authors,omitempty"`
	// Author pins the celebrity-cascade head; -1 selects the Zipf head
	// (author 0, the most-followed celebrity). Only celebrity-cascade uses
	// it.
	Author int32 `json:"author,omitempty"`
	// Edits bounds the perturbation edit count per near-duplicate post
	// (flash-crowd, celebrity-cascade). Botnet posts are byte-identical by
	// definition and must leave it zero.
	Edits int `json:"edits,omitempty"`

	// Amplitude is the diurnal-whiplash modulation depth in (0,1]: the
	// instantaneous rate swings between (1−A)× and (1+A)× PostsPerMinute.
	Amplitude float64 `json:"amplitude,omitempty"`
	// PeriodMillis is the diurnal-whiplash oscillation period.
	PeriodMillis int64 `json:"period_millis,omitempty"`

	// RewiresPerMinute is the graph-churn rate of followee-set rewrites.
	RewiresPerMinute float64 `json:"rewires_per_minute,omitempty"`
}

// BackgroundSpec layers well-behaved GenerateStream-shaped traffic under the
// events: diurnal Poisson arrivals from every author.
type BackgroundSpec struct {
	// PostsPerAuthorPerDay is the mean Poisson post rate per author.
	PostsPerAuthorPerDay float64 `json:"posts_per_author_per_day"`
	// DupProbability is the near-duplicate injection probability of the
	// background traffic, as in StreamConfig.
	DupProbability float64 `json:"dup_probability"`
}

// Workload is the top-level DSL spec: a named, seeded, time-bounded schedule
// of adversarial events over optional background traffic. A Workload fully
// determines its generated stream — GenerateWorkload derives its RNG from
// Seed, so equal specs produce byte-equal streams.
type Workload struct {
	Name           string          `json:"name"`
	Seed           int64           `json:"seed"`
	StartMillis    int64           `json:"start_millis"`
	DurationMillis int64           `json:"duration_millis"`
	Background     *BackgroundSpec `json:"background,omitempty"`
	Events         []Event         `json:"events"`
}

// Validate reports the first schema violation, or nil.
func (w *Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("twittergen: workload needs a name")
	}
	if w.StartMillis < 0 {
		return fmt.Errorf("twittergen: workload %q: StartMillis must be non-negative, got %d", w.Name, w.StartMillis)
	}
	if w.DurationMillis <= 0 {
		return fmt.Errorf("twittergen: workload %q: DurationMillis must be positive, got %d", w.Name, w.DurationMillis)
	}
	if b := w.Background; b != nil {
		if b.PostsPerAuthorPerDay <= 0 || math.IsInf(b.PostsPerAuthorPerDay, 0) || math.IsNaN(b.PostsPerAuthorPerDay) {
			return fmt.Errorf("twittergen: workload %q: background PostsPerAuthorPerDay must be positive and finite", w.Name)
		}
		if b.DupProbability < 0 || b.DupProbability > 1 || math.IsNaN(b.DupProbability) {
			return fmt.Errorf("twittergen: workload %q: background DupProbability out of [0,1]", w.Name)
		}
	}
	if len(w.Events) == 0 && w.Background == nil {
		return fmt.Errorf("twittergen: workload %q: empty — no events and no background", w.Name)
	}
	for i := range w.Events {
		if err := w.Events[i].validate(w.DurationMillis); err != nil {
			return fmt.Errorf("twittergen: workload %q event %d: %w", w.Name, i, err)
		}
	}
	return nil
}

// validate checks one event against its kind's schema. total is the workload
// duration the event must fit inside.
func (e *Event) validate(total int64) error {
	if !validEventKind(e.Kind) {
		return fmt.Errorf("unknown kind %q", string(e.Kind))
	}
	if e.AtMillis < 0 || e.DurationMillis <= 0 || e.AtMillis+e.DurationMillis > total {
		return fmt.Errorf("%s: window [%d,%d+%d) outside workload duration %d",
			e.Kind, e.AtMillis, e.AtMillis, e.DurationMillis, total)
	}
	// Rate-bearing kinds share the rate/author checks; the per-kind switch
	// below rejects knobs foreign to the kind, so an over-specified spec
	// fails loudly instead of having fields silently ignored.
	needRate := func() error {
		if e.PostsPerMinute <= 0 || math.IsInf(e.PostsPerMinute, 0) || math.IsNaN(e.PostsPerMinute) {
			return fmt.Errorf("%s: PostsPerMinute must be positive and finite, got %v", e.Kind, e.PostsPerMinute)
		}
		return nil
	}
	needAuthors := func() error {
		if e.Authors <= 0 {
			return fmt.Errorf("%s: Authors must be positive, got %d", e.Kind, e.Authors)
		}
		return nil
	}
	forbid := func(cond bool, field string) error {
		if cond {
			return fmt.Errorf("%s: field %s is not part of this kind's schema", e.Kind, field)
		}
		return nil
	}
	checks := []error{}
	switch e.Kind {
	case FlashCrowd:
		checks = append(checks, needRate(), needAuthors(),
			forbid(e.Edits < 1, "Edits (must be >= 1)"),
			forbid(e.Author != 0, "Author"),
			forbid(e.Amplitude != 0, "Amplitude"),
			forbid(e.PeriodMillis != 0, "PeriodMillis"),
			forbid(e.RewiresPerMinute != 0, "RewiresPerMinute"))
	case CelebrityCascade:
		checks = append(checks, needRate(), needAuthors(),
			forbid(e.Edits < 1, "Edits (must be >= 1)"),
			forbid(e.Author < -1, "Author (must be >= -1)"),
			forbid(e.Amplitude != 0, "Amplitude"),
			forbid(e.PeriodMillis != 0, "PeriodMillis"),
			forbid(e.RewiresPerMinute != 0, "RewiresPerMinute"))
	case Botnet:
		checks = append(checks, needRate(), needAuthors(),
			forbid(e.Edits != 0, "Edits (botnet posts are byte-identical)"),
			forbid(e.Author != 0, "Author"),
			forbid(e.Amplitude != 0, "Amplitude"),
			forbid(e.PeriodMillis != 0, "PeriodMillis"),
			forbid(e.RewiresPerMinute != 0, "RewiresPerMinute"))
	case DiurnalWhiplash:
		checks = append(checks, needRate(),
			forbid(e.Amplitude <= 0 || e.Amplitude > 1 || math.IsNaN(e.Amplitude), "Amplitude (must be in (0,1])"),
			forbid(e.PeriodMillis <= 0, "PeriodMillis (must be positive)"),
			forbid(e.Authors != 0, "Authors"),
			forbid(e.Edits != 0, "Edits"),
			forbid(e.Author != 0, "Author"),
			forbid(e.RewiresPerMinute != 0, "RewiresPerMinute"))
	case GraphChurn:
		checks = append(checks,
			forbid(e.RewiresPerMinute <= 0 || math.IsInf(e.RewiresPerMinute, 0) || math.IsNaN(e.RewiresPerMinute),
				"RewiresPerMinute (must be positive and finite)"),
			forbid(e.PostsPerMinute != 0, "PostsPerMinute"),
			forbid(e.Authors != 0, "Authors"),
			forbid(e.Edits != 0, "Edits"),
			forbid(e.Author != 0, "Author"),
			forbid(e.Amplitude != 0, "Amplitude"),
			forbid(e.PeriodMillis != 0, "PeriodMillis"))
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	return nil
}

// ParseWorkload decodes and validates one JSON workload spec. Decoding is
// strict: unknown fields, trailing data and schema violations are all
// errors. A nil error guarantees the returned workload round-trips through
// json.Marshal/ParseWorkload unchanged.
func ParseWorkload(data []byte) (*Workload, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w Workload
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("twittergen: workload spec: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("twittergen: workload spec: trailing data after the JSON object")
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &w, nil
}

// ChurnEvent is one scheduled followee-set rewrite: at AtMillis (absolute
// stream time), author Author's followee list becomes Followees. The
// generator only schedules these; the scenario runner applies them through
// authorsim.MutableVectors.SetFollowees + Graph.WithUpdatedAuthor and swaps
// the refreshed graph into the engine at a safe point.
type ChurnEvent struct {
	AtMillis  int64
	Author    int32
	Followees []int32
}

// WorkloadStream is a generated adversarial stream: time-ordered posts, the
// index of the event each post belongs to (-1 for background traffic), and
// the time-ordered churn schedule.
type WorkloadStream struct {
	Posts   []*core.Post
	EventOf []int
	Churn   []ChurnEvent
}

// EventCounts tallies posts per event index (-1 = background).
func (ws *WorkloadStream) EventCounts() map[int]int {
	m := make(map[int]int)
	for _, e := range ws.EventOf {
		m[e]++
	}
	return m
}

// GenerateWorkload realizes a workload spec over a social graph. The sim
// oracle steers the background traffic's duplicate injection exactly as in
// GenerateStream; event posts get their shape from the spec alone. The RNG
// is derived from w.Seed, so the output is a pure function of (sg, vocab
// state, w) — a fresh Vocab per run (it draws from its own captured RNG) is
// what lets scenario reports be golden-tested.
func GenerateWorkload(sg *SocialGraph, sim SimilarityOracle, vocab *Vocab, w *Workload) (*WorkloadStream, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(w.Seed))
	numAuthors := len(sg.Followees)
	if numAuthors == 0 {
		return nil, fmt.Errorf("twittergen: workload %q: social graph has no authors", w.Name)
	}

	type slot struct {
		author int32
		time   int64
		event  int // -1 background
		seq    int // per-event emission order, for cascade head-first and stable text derivation
	}
	var slots []slot

	// Background layer: reuse the calibrated one-day generator at the
	// workload's start/duration, then relabel its posts as event -1. Running
	// it first pins its RNG consumption so adding events never perturbs the
	// background shape.
	var background *GeneratedStream
	if w.Background != nil {
		cfg := DefaultStreamConfig()
		cfg.PostsPerAuthorPerDay = w.Background.PostsPerAuthorPerDay
		cfg.DupProbability = w.Background.DupProbability
		cfg.StartMillis = w.StartMillis
		cfg.DurationMillis = w.DurationMillis
		gs, err := GenerateStream(rng, sg, sim, vocab, cfg)
		if err != nil {
			return nil, err
		}
		background = gs
	}

	var churn []ChurnEvent
	for ei := range w.Events {
		ev := &w.Events[ei]
		start := w.StartMillis + ev.AtMillis
		minutes := float64(ev.DurationMillis) / 60_000
		switch ev.Kind {
		case FlashCrowd, CelebrityCascade, Botnet:
			total := int(ev.PostsPerMinute * minutes)
			if total < 1 {
				total = 1
			}
			for i := 0; i < total; i++ {
				t := start + int64(rng.Float64()*float64(ev.DurationMillis))
				if ev.Kind == CelebrityCascade && i == 0 {
					t = start // the head's post opens the cascade
				}
				slots = append(slots, slot{time: t, event: ei, seq: i})
			}
		case DiurnalWhiplash:
			total := int(ev.PostsPerMinute * minutes)
			for i := 0; i < total; i++ {
				slots = append(slots, slot{
					time:  sampleWhiplashTime(rng, start, ev.DurationMillis, ev.Amplitude, ev.PeriodMillis),
					event: ei,
				})
			}
		case GraphChurn:
			n := int(ev.RewiresPerMinute * minutes)
			if n < 1 {
				n = 1
			}
			for i := 0; i < n; i++ {
				a := int32(rng.Intn(numAuthors))
				churn = append(churn, ChurnEvent{
					AtMillis:  start + int64(rng.Float64()*float64(ev.DurationMillis)),
					Author:    a,
					Followees: mutateFollowees(rng, sg, a),
				})
			}
		}
	}

	// Event participant pools and seed texts, fixed per event.
	participants := make([][]int32, len(w.Events))
	seeds := make([]string, len(w.Events))
	heads := make([]int32, len(w.Events))
	for ei := range w.Events {
		ev := &w.Events[ei]
		switch ev.Kind {
		case FlashCrowd, CelebrityCascade, Botnet:
			k := ev.Authors
			if k > numAuthors {
				k = numAuthors
			}
			pool := make([]int32, k)
			for i, idx := range rng.Perm(numAuthors)[:k] {
				pool[i] = int32(idx)
			}
			participants[ei] = pool
			seeds[ei] = vocab.Sentence(10) + " " + shortURL(rng)
			if ev.Kind == CelebrityCascade {
				heads[ei] = ev.Author
				if heads[ei] < 0 {
					heads[ei] = 0 // the Zipf head: the most-followed celebrity
				}
				if int(heads[ei]) >= numAuthors {
					return nil, fmt.Errorf("twittergen: workload %q event %d: cascade head %d outside [0,%d)",
						w.Name, ei, heads[ei], numAuthors)
				}
			}
		}
	}

	// Assign authors and compose texts in slot order.
	for i := range slots {
		s := &slots[i]
		if s.event < 0 {
			continue
		}
		ev := &w.Events[s.event]
		pool := participants[s.event]
		switch ev.Kind {
		case FlashCrowd, Botnet, DiurnalWhiplash:
			if len(pool) > 0 {
				s.author = pool[rng.Intn(len(pool))]
			} else {
				s.author = int32(rng.Intn(numAuthors))
			}
		case CelebrityCascade:
			if s.seq == 0 {
				s.author = heads[s.event]
			} else {
				s.author = pool[rng.Intn(len(pool))]
				if s.author == heads[s.event] && len(pool) > 1 {
					s.author = pool[(rng.Intn(len(pool)-1)+1)%len(pool)]
				}
			}
		}
	}

	sort.SliceStable(slots, func(i, j int) bool {
		if slots[i].time != slots[j].time {
			return slots[i].time < slots[j].time
		}
		if slots[i].author != slots[j].author {
			return slots[i].author < slots[j].author
		}
		return slots[i].event < slots[j].event
	})
	sort.SliceStable(churn, func(i, j int) bool { return churn[i].AtMillis < churn[j].AtMillis })

	// Merge the background stream (already time-ordered) with the event
	// slots, composing event texts as we go.
	ws := &WorkloadStream{Churn: churn}
	bg := 0
	emit := func(author int32, t int64, text string, event int) {
		ws.Posts = append(ws.Posts, core.NewPost(uint64(len(ws.Posts)+1), author, t, text))
		ws.EventOf = append(ws.EventOf, event)
	}
	for _, s := range slots {
		for background != nil && bg < len(background.Posts) && background.Posts[bg].Time <= s.time {
			p := background.Posts[bg]
			emit(p.Author, p.Time, p.Text, -1)
			bg++
		}
		ev := &w.Events[s.event]
		var text string
		switch ev.Kind {
		case Botnet:
			text = seeds[s.event] // byte-identical: identical fingerprints
		case FlashCrowd:
			text = PerturbText(rng, seeds[s.event], participants[s.event][0], 1+rng.Intn(ev.Edits))
		case CelebrityCascade:
			if s.seq == 0 {
				text = seeds[s.event]
			} else {
				text = PerturbText(rng, seeds[s.event], heads[s.event], 1+rng.Intn(ev.Edits))
			}
		case DiurnalWhiplash:
			text = vocab.Sentence(8 + rng.Intn(8))
		}
		emit(s.author, s.time, text, s.event)
	}
	for background != nil && bg < len(background.Posts) {
		p := background.Posts[bg]
		emit(p.Author, p.Time, p.Text, -1)
		bg++
	}
	return ws, nil
}

// sampleWhiplashTime draws one arrival in [start, start+duration) under the
// sinusoidal intensity 1 + A·sin(2πt/P), by rejection sampling (mean weight
// is 1, so PostsPerMinute stays the mean rate).
func sampleWhiplashTime(rng *rand.Rand, start, duration int64, amplitude float64, period int64) int64 {
	maxW := 1 + amplitude
	for {
		off := int64(rng.Float64() * float64(duration))
		weight := 1 + amplitude*math.Sin(2*math.Pi*float64(off)/float64(period))
		if rng.Float64()*maxW <= weight {
			return start + off
		}
	}
}

// mutateFollowees derives a new followee list for author a: one third of
// rewrites shrink the list, one third grow it with random accounts, one
// third rewire (replace a block with random accounts). Targets come from the
// full account universe [0, NumAccounts), as real follows do. The result is
// always non-empty, and never aliases sg's slices.
func mutateFollowees(rng *rand.Rand, sg *SocialGraph, a int32) []int32 {
	cur := sg.Followees[a]
	out := make([]int32, len(cur))
	copy(out, cur)
	randAccount := func() int32 { return int32(rng.Intn(sg.NumAccounts)) }
	switch rng.Intn(3) {
	case 0: // shrink: drop up to half the follows
		if len(out) > 1 {
			drop := 1 + rng.Intn((len(out)+1)/2)
			rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
			out = out[:len(out)-drop]
		}
	case 1: // grow: add 1..8 random accounts
		for i, n := 0, 1+rng.Intn(8); i < n; i++ {
			out = append(out, randAccount())
		}
	default: // rewire: replace up to half the follows with random accounts
		if len(out) > 0 {
			for i, n := 0, 1+rng.Intn((len(out)+1)/2); i < n; i++ {
				out[rng.Intn(len(out))] = randAccount()
			}
		} else {
			out = append(out, randAccount())
		}
	}
	if len(out) == 0 {
		out = append(out, randAccount())
	}
	return out
}
