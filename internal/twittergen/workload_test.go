package twittergen

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"firehose/internal/simhash"
)

// workloadFixture builds the graph substrate plus a vocab factory: Vocab
// draws from its own captured RNG, so deterministic generation runs need a
// fresh, identically-seeded Vocab per call.
func workloadFixture(t testing.TB, seed int64, nAuthors int) (*SocialGraph, func() *Vocab) {
	t.Helper()
	sg, err := GenerateGraph(rand.New(rand.NewSource(seed)), DefaultGraphConfig(nAuthors))
	if err != nil {
		t.Fatal(err)
	}
	return sg, func() *Vocab { return NewVocab(rand.New(rand.NewSource(seed+1)), 3000) }
}

// noSim is a SimilarityOracle with no similar pairs; workload tests that do
// not exercise background duplicate injection can avoid building the graph.
type noSim struct{}

func (noSim) Similar(a, b int32) bool { return a == b }

func sampleWorkload() *Workload {
	return &Workload{
		Name:           "sample",
		Seed:           42,
		DurationMillis: 60 * 60 * 1000,
		Background:     &BackgroundSpec{PostsPerAuthorPerDay: 24, DupProbability: 0.1},
		Events: []Event{
			{Kind: FlashCrowd, AtMillis: 5 * 60_000, DurationMillis: 10 * 60_000, PostsPerMinute: 120, Authors: 40, Edits: 2},
			{Kind: Botnet, AtMillis: 20 * 60_000, DurationMillis: 5 * 60_000, PostsPerMinute: 200, Authors: 25},
			{Kind: CelebrityCascade, AtMillis: 30 * 60_000, DurationMillis: 10 * 60_000, PostsPerMinute: 90, Authors: 50, Author: -1, Edits: 2},
			{Kind: DiurnalWhiplash, AtMillis: 0, DurationMillis: 60 * 60_000, PostsPerMinute: 60, Amplitude: 1, PeriodMillis: 10 * 60_000},
			{Kind: GraphChurn, AtMillis: 10 * 60_000, DurationMillis: 40 * 60_000, RewiresPerMinute: 2},
		},
	}
}

func TestWorkloadValidate(t *testing.T) {
	base := sampleWorkload()
	if err := base.Validate(); err != nil {
		t.Fatalf("sample workload invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Workload)
	}{
		{"no name", func(w *Workload) { w.Name = "" }},
		{"zero duration", func(w *Workload) { w.DurationMillis = 0 }},
		{"negative start", func(w *Workload) { w.StartMillis = -1 }},
		{"empty", func(w *Workload) { w.Background = nil; w.Events = nil }},
		{"background rate", func(w *Workload) { w.Background.PostsPerAuthorPerDay = 0 }},
		{"background dup", func(w *Workload) { w.Background.DupProbability = 1.5 }},
		{"unknown kind", func(w *Workload) { w.Events[0].Kind = "ddos" }},
		{"event past end", func(w *Workload) { w.Events[0].AtMillis = w.DurationMillis }},
		{"zero rate", func(w *Workload) { w.Events[0].PostsPerMinute = 0 }},
		{"zero authors", func(w *Workload) { w.Events[0].Authors = 0 }},
		{"flash-crowd with amplitude", func(w *Workload) { w.Events[0].Amplitude = 0.5 }},
		{"flash-crowd with head", func(w *Workload) { w.Events[0].Author = 3 }},
		{"botnet with edits", func(w *Workload) { w.Events[1].Edits = 2 }},
		{"cascade bad head", func(w *Workload) { w.Events[2].Author = -2 }},
		{"whiplash amplitude", func(w *Workload) { w.Events[3].Amplitude = 1.5 }},
		{"whiplash no period", func(w *Workload) { w.Events[3].PeriodMillis = 0 }},
		{"churn with posts", func(w *Workload) { w.Events[4].PostsPerMinute = 10 }},
		{"churn zero rate", func(w *Workload) { w.Events[4].RewiresPerMinute = 0 }},
	}
	for _, tc := range cases {
		w := sampleWorkload()
		tc.mutate(w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestParseWorkloadRoundTrip(t *testing.T) {
	w := sampleWorkload()
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseWorkload(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, w) {
		t.Fatalf("round trip changed the spec:\n%#v\n%#v", got, w)
	}
	if _, err := ParseWorkload([]byte(`{"name":"x","duration_millis":1,"events":[],"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseWorkload(append(data, []byte(" {}")...)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestGenerateWorkloadDeterministic(t *testing.T) {
	sg, vocab := workloadFixture(t, 11, 200)
	w := sampleWorkload()
	a, err := GenerateWorkload(sg, noSim{}, vocab(), w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWorkload(sg, noSim{}, vocab(), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Posts) != len(b.Posts) || len(a.Churn) != len(b.Churn) {
		t.Fatalf("non-deterministic sizes: %d/%d posts, %d/%d churn",
			len(a.Posts), len(b.Posts), len(a.Churn), len(b.Churn))
	}
	for i := range a.Posts {
		pa, pb := a.Posts[i], b.Posts[i]
		if pa.Author != pb.Author || pa.Time != pb.Time || pa.Text != pb.Text || pa.FP != pb.FP {
			t.Fatalf("post %d differs between identical runs", i)
		}
	}
	if !reflect.DeepEqual(a.Churn, b.Churn) {
		t.Fatal("churn schedule differs between identical runs")
	}
}

func TestGenerateWorkloadShapes(t *testing.T) {
	sg, vocab := workloadFixture(t, 12, 200)
	w := sampleWorkload()
	ws, err := GenerateWorkload(sg, noSim{}, vocab(), w)
	if err != nil {
		t.Fatal(err)
	}

	// Stream is time-ordered with 1-based sequential ids.
	for i, p := range ws.Posts {
		if p.ID != uint64(i+1) {
			t.Fatalf("post %d has id %d", i, p.ID)
		}
		if i > 0 && p.Time < ws.Posts[i-1].Time {
			t.Fatalf("post %d out of order", i)
		}
	}

	counts := ws.EventCounts()
	// Background plus every post-bearing event contributed.
	if counts[-1] == 0 {
		t.Fatal("no background posts")
	}
	for ei, ev := range w.Events {
		if ev.Kind == GraphChurn {
			if counts[ei] != 0 {
				t.Fatalf("graph-churn event %d emitted %d posts", ei, counts[ei])
			}
			continue
		}
		want := int(ev.PostsPerMinute * float64(ev.DurationMillis) / 60_000)
		if got := counts[ei]; got != want {
			t.Fatalf("event %d (%s): %d posts, want %d", ei, ev.Kind, got, want)
		}
	}

	var botnetFP *simhash.Fingerprint
	botnetAuthors := map[int32]bool{}
	var flashSeedFP simhash.Fingerprint
	flashNear, flashTotal := 0, 0
	var cascadeHeadSeen bool
	for i, p := range ws.Posts {
		ei := ws.EventOf[i]
		if ei < 0 {
			continue
		}
		ev := w.Events[ei]
		if p.Time < w.StartMillis+ev.AtMillis || p.Time >= w.StartMillis+ev.AtMillis+ev.DurationMillis {
			t.Fatalf("post %d outside its event window", i)
		}
		switch ev.Kind {
		case Botnet:
			if botnetFP == nil {
				fp := p.FP
				botnetFP = &fp
			} else if p.FP != *botnetFP {
				t.Fatal("botnet fingerprints differ")
			}
			botnetAuthors[p.Author] = true
		case FlashCrowd:
			if flashTotal == 0 {
				flashSeedFP = p.FP
			}
			flashTotal++
			if simhash.Distance(p.FP, flashSeedFP) <= 18 {
				flashNear++
			}
		case CelebrityCascade:
			if p.Time == w.StartMillis+ev.AtMillis && !cascadeHeadSeen {
				cascadeHeadSeen = true
				if p.Author != 0 {
					t.Fatalf("cascade head is author %d, want the Zipf head 0", p.Author)
				}
			}
		}
	}
	if len(botnetAuthors) < 2 {
		t.Fatalf("botnet used %d distinct authors", len(botnetAuthors))
	}
	// Flash-crowd posts are perturbations of one seed: the bulk must sit
	// within the default λc of the first one.
	if flashNear*10 < flashTotal*8 {
		t.Fatalf("only %d/%d flash-crowd posts within λc=18 of the seed", flashNear, flashTotal)
	}
	if !cascadeHeadSeen {
		t.Fatal("cascade head post not found at event onset")
	}

	// Churn schedule: in-window, in-range authors, valid non-empty followee
	// lists over the account universe, time-ordered.
	churnEv := w.Events[4]
	if len(ws.Churn) == 0 {
		t.Fatal("no churn events")
	}
	for i, c := range ws.Churn {
		if i > 0 && c.AtMillis < ws.Churn[i-1].AtMillis {
			t.Fatal("churn out of order")
		}
		if c.AtMillis < w.StartMillis+churnEv.AtMillis || c.AtMillis >= w.StartMillis+churnEv.AtMillis+churnEv.DurationMillis {
			t.Fatal("churn outside its window")
		}
		if c.Author < 0 || int(c.Author) >= len(sg.Followees) {
			t.Fatalf("churn author %d out of range", c.Author)
		}
		if len(c.Followees) == 0 {
			t.Fatal("churn produced an empty followee list")
		}
		for _, f := range c.Followees {
			if f < 0 || int(f) >= sg.NumAccounts {
				t.Fatalf("churn followee %d outside account universe [0,%d)", f, sg.NumAccounts)
			}
		}
	}
}

// TestGenerateWorkloadBackgroundStable pins the composition property: adding
// events must not perturb the background layer's shape (the background
// consumes its RNG draw first).
func TestGenerateWorkloadBackgroundStable(t *testing.T) {
	sg, vocab := workloadFixture(t, 13, 150)
	quiet := &Workload{
		Name: "quiet", Seed: 7, DurationMillis: 30 * 60_000,
		Background: &BackgroundSpec{PostsPerAuthorPerDay: 48, DupProbability: 0},
	}
	noisy := *quiet
	noisy.Name = "noisy"
	noisy.Events = []Event{{Kind: Botnet, AtMillis: 0, DurationMillis: 30 * 60_000, PostsPerMinute: 50, Authors: 10}}

	a, err := GenerateWorkload(sg, noSim{}, vocab(), quiet)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWorkload(sg, noSim{}, vocab(), &noisy)
	if err != nil {
		t.Fatal(err)
	}
	var bgTexts []string
	for i, p := range b.Posts {
		if b.EventOf[i] == -1 {
			bgTexts = append(bgTexts, p.Text)
		}
	}
	if len(bgTexts) != len(a.Posts) {
		t.Fatalf("background size changed: %d vs %d", len(bgTexts), len(a.Posts))
	}
	for i, p := range a.Posts {
		if bgTexts[i] != p.Text {
			t.Fatalf("background post %d text changed when events were added", i)
		}
	}
}

// FuzzParseWorkload exercises the DSL parser/validator: any accepted spec
// must validate, survive a marshal/parse round trip unchanged, and generate
// deterministically without panicking on a tiny graph.
func FuzzParseWorkload(f *testing.F) {
	seed, _ := json.Marshal(sampleWorkload())
	f.Add(string(seed))
	f.Add(`{"name":"x","duration_millis":1000,"background":{"posts_per_author_per_day":5,"dup_probability":0.5}}`)
	f.Add(`{"name":"y","seed":3,"duration_millis":60000,"events":[{"kind":"botnet","at_millis":0,"duration_millis":1000,"posts_per_minute":10,"authors":2}]}`)
	f.Add(`{"name":"z","duration_millis":60000,"events":[{"kind":"graph-churn","at_millis":0,"duration_millis":60000,"rewires_per_minute":1}]}`)
	f.Add(`{"nope`)
	f.Fuzz(func(t *testing.T, spec string) {
		w, err := ParseWorkload([]byte(spec))
		if err != nil {
			return
		}
		if verr := w.Validate(); verr != nil {
			t.Fatalf("ParseWorkload accepted a spec Validate rejects: %v", verr)
		}
		data, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		again, err := ParseWorkload(data)
		if err != nil {
			t.Fatalf("accepted spec does not re-parse: %v", err)
		}
		if !reflect.DeepEqual(again, w) {
			t.Fatalf("round trip changed the spec:\n%#v\n%#v", again, w)
		}
		// Generation must not panic on accepted specs; cap the volume so the
		// fuzzer cannot buy quadratic work with huge rates or durations.
		if w.DurationMillis > 10*60_000 {
			return
		}
		volume := float64(w.DurationMillis) / 60_000
		if w.Background != nil && w.Background.PostsPerAuthorPerDay > 1000 {
			return
		}
		for _, ev := range w.Events {
			volume += ev.PostsPerMinute * float64(ev.DurationMillis) / 60_000
			volume += ev.RewiresPerMinute * float64(ev.DurationMillis) / 60_000
		}
		if volume > 50_000 {
			return
		}
		rng := rand.New(rand.NewSource(1))
		sg, err := GenerateGraph(rng, DefaultGraphConfig(16))
		if err != nil {
			t.Fatal(err)
		}
		ws, err := GenerateWorkload(sg, noSim{}, NewVocab(rng, 200), w)
		if err != nil {
			// Generation may reject graph-dependent specs (e.g. a cascade
			// head outside the graph); that must be an error, not a panic.
			if !strings.Contains(err.Error(), "twittergen:") {
				t.Fatalf("unexpected error shape: %v", err)
			}
			return
		}
		if len(ws.Posts) != len(ws.EventOf) {
			t.Fatal("Posts/EventOf length mismatch")
		}
	})
}
