package firehose

import "testing"

// TestStatsDecisionLatency checks that every decided post is accounted in the
// public latency summary and that its percentiles are ordered.
func TestStatsDecisionLatency(t *testing.T) {
	graph, posts, subs := generateScenario(t, 120, 7)
	svc, err := NewMultiUserService(graph, subs, DefaultConfig(), MultiUserOptions{Algorithm: UniBin})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range posts {
		svc.Offer(p)
	}
	st := svc.Stats()
	lat := st.DecisionLatency
	if lat.Count != st.Accepted+st.Rejected {
		t.Fatalf("latency count %d != decided %d", lat.Count, st.Accepted+st.Rejected)
	}
	if lat.Mean <= 0 {
		t.Fatalf("mean latency %v", lat.Mean)
	}
	if lat.P50 > lat.P95 || lat.P95 > lat.P99 {
		t.Fatalf("percentiles out of order: %v / %v / %v", lat.P50, lat.P95, lat.P99)
	}
}

// TestParallelWorkerStats checks the per-worker observability surface of the
// parallel service: worker stats sum to the service totals and queue waits
// account every decided post.
func TestParallelWorkerStats(t *testing.T) {
	graph, posts, subs := generateScenario(t, 150, 23)
	par, err := NewParallelService(UniBin, graph, subs, DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range posts {
		if _, err := par.Offer(p); err != nil {
			t.Fatal(err)
		}
	}
	par.Close()

	ws := par.WorkerStats()
	if len(ws) != 3 {
		t.Fatalf("got %d worker stats", len(ws))
	}
	total := par.Stats()
	var decided, waits uint64
	for i, w := range ws {
		if w.Worker != i {
			t.Fatalf("worker stats out of order: %d at %d", w.Worker, i)
		}
		if w.QueueDepth != 0 {
			t.Fatalf("worker %d queue not drained: %d", i, w.QueueDepth)
		}
		if w.QueueCapacity != par.QueueDepth() {
			t.Fatalf("worker %d capacity %d != %d", i, w.QueueCapacity, par.QueueDepth())
		}
		decided += w.Stats.Accepted + w.Stats.Rejected
		waits += w.QueueWait.Count
	}
	if want := total.Accepted + total.Rejected; decided != want {
		t.Fatalf("per-worker decided %d != total %d", decided, want)
	}
	if waits != uint64(len(posts)) {
		t.Fatalf("queue waits %d != posts %d", waits, len(posts))
	}
}
