package firehose

import (
	"fmt"

	"firehose/internal/core"
	"firehose/internal/stream"
)

// ParallelService is a multi-goroutine M-SPSD engine. It exploits the
// independence the paper's Section 5 establishes: posts from different
// connected components of the author similarity graph can never cover each
// other, so components shard cleanly across workers — per-component decision
// order is preserved while disjoint shards run concurrently. Per-user
// timelines are identical to MultiUserService's (property-tested).
//
// Offer may be called from one goroutine (posts must stay in global time
// order); decisions complete asynchronously and are joined through the
// returned Delivery.
type ParallelService struct {
	inner *stream.ParallelMultiEngine
}

// Delivery is a pending decision; Users blocks until it resolves.
type Delivery struct{ t *stream.Ticket }

// Users returns the ids of the users whose timeline received the post.
func (d Delivery) Users() []UserID { return d.t.Users() }

// NewParallelService builds the sharded service with the given worker count.
func NewParallelService(alg Algorithm, g *AuthorGraph, subscriptions [][]AuthorID, cfg Config, workers int) (*ParallelService, error) {
	if err := checkConfig(cfg, g); err != nil {
		return nil, err
	}
	for u, subs := range subscriptions {
		if err := checkAuthors(subs, g.NumAuthors()); err != nil {
			return nil, wrapUserErr(u, err)
		}
	}
	inner, err := stream.NewParallelMultiEngine(alg, g.g, int32Slices(subscriptions), cfg.thresholds(), workers)
	if err != nil {
		return nil, err
	}
	return &ParallelService{inner: inner}, nil
}

// Offer enqueues a post for its component's worker and returns immediately.
func (s *ParallelService) Offer(p Post) (Delivery, error) {
	t, err := s.inner.Offer(core.NewPost(p.ID, p.Author, p.Time.UnixMilli(), p.Text))
	return Delivery{t: t}, err
}

// Close drains all workers; call before reading final Stats.
func (s *ParallelService) Close() { s.inner.Close() }

// Workers returns the shard count.
func (s *ParallelService) Workers() int { return s.inner.NumWorkers() }

// Stats merges the cost counters across workers.
func (s *ParallelService) Stats() Stats {
	c := s.inner.Counters()
	return statsOf(&c)
}

func wrapUserErr(u int, err error) error {
	return fmt.Errorf("user %d: %w", u, err)
}
