package firehose

import (
	"fmt"
	"runtime"

	"firehose/internal/core"
	"firehose/internal/stream"
)

// Typed errors of the parallel service, re-exported for errors.Is checks.
var (
	// ErrClosed is returned by ParallelService.Offer after Close has begun.
	ErrClosed = stream.ErrClosed
	// ErrQueueFull is returned by ParallelService.Offer in fail-fast mode
	// when the target worker's queue is at capacity; the post was not
	// enqueued.
	ErrQueueFull = stream.ErrQueueFull
)

// ParallelServiceOptions configures NewParallel, the canonical parallel
// constructor.
type ParallelServiceOptions struct {
	// Algorithm is the per-component SPSD algorithm. The zero value is
	// UniBin.
	Algorithm Algorithm
	// Config holds the service-wide thresholds. Required; there is no
	// implicit default — use DefaultConfig() explicitly for the paper's
	// thresholds.
	Config Config
	// Workers is the shard count; 0 selects runtime.NumCPU().
	Workers int
	// QueueDepth bounds each worker's pending-post queue; 0 selects the
	// engine default (256). A full queue blocks Offer — backpressure — or
	// fails it fast, per FailFast.
	QueueDepth int
	// FailFast makes Offer return ErrQueueFull instead of blocking when the
	// target worker's queue is full, for ingestion tiers that prefer
	// shedding or retrying over stalling.
	FailFast bool
	// Adaptive, when non-nil, layers the per-user delivery-rate controller
	// over every worker shard; see AdaptiveConfig. Budgets are accounted per
	// shard: a user whose subscriptions span k shards can receive up to k×
	// BudgetPosts per window, because each shard's controller sees only the
	// deliveries it decides (users inside a single connected component always
	// land on one shard, so the bound is exact for them). Adaptive services
	// do not support checkpointing.
	Adaptive *AdaptiveConfig
	// Topology, when non-nil, stamps the service's place in a horizontally
	// sharded deployment into its snapshot fingerprint; see Topology. Nil is
	// the single-node deployment. (Workers above is goroutine-level
	// parallelism inside one process; Topology is the process-level split.)
	Topology *Topology
}

// ParallelOptions configures NewParallelServiceOpts.
//
// Deprecated: use ParallelServiceOptions with NewParallel.
type ParallelOptions struct {
	// Workers is the shard count; 0 selects runtime.NumCPU().
	Workers int
	// QueueDepth bounds each worker's pending-post queue; 0 selects the
	// engine default (256). A full queue blocks Offer — backpressure — or
	// fails it fast, per FailFast.
	QueueDepth int
	// FailFast makes Offer return ErrQueueFull instead of blocking when the
	// target worker's queue is full, for ingestion tiers that prefer
	// shedding or retrying over stalling.
	FailFast bool
}

// ParallelService is a multi-goroutine M-SPSD engine. It exploits the
// independence the paper's Section 5 establishes: posts from different
// connected components of the author similarity graph can never cover each
// other, so components shard cleanly across workers — per-component decision
// order is preserved while disjoint shards run concurrently. Per-user
// timelines are identical to MultiUserService's (property-tested).
//
// Concurrency contract: Offer, Close and Stats are safe to call from any
// number of goroutines. The ingest boundary serializes routing and assigns
// each post a monotone sequence number (Delivery.Seq), which defines the
// stream order; concurrent producers must ensure post timestamps are
// non-decreasing in that order (e.g. by timestamping at ingestion).
// Decisions complete asynchronously and are joined through the returned
// Delivery. Close drains every in-flight decision before returning; Offers
// racing a Close return ErrClosed.
type ParallelService struct {
	inner *stream.ParallelMultiEngine
	meta  snapMeta
}

// Delivery is a pending decision; Users blocks until it resolves.
type Delivery struct{ t *stream.Ticket }

// Users returns the ids of the users whose timeline received the post.
func (d Delivery) Users() []UserID { return d.t.Users() }

// Seq returns the monotone ingest sequence number assigned to the post —
// the service's global arrival order across all workers.
func (d Delivery) Seq() uint64 { return d.t.Seq() }

// NewParallel builds the sharded service. subscriptions[u] lists the authors
// user u follows. This is the canonical constructor; the NewParallelService
// and NewParallelServiceOpts wrappers delegate here.
func NewParallel(g *AuthorGraph, subscriptions [][]AuthorID, opts ParallelServiceOptions) (*ParallelService, error) {
	if err := checkConfig(opts.Config, g); err != nil {
		return nil, err
	}
	for u, subs := range subscriptions {
		if err := checkAuthors(subs, g.NumAuthors()); err != nil {
			return nil, wrapUserErr(u, err)
		}
	}
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	var pol *core.AdaptivePolicy
	if opts.Adaptive != nil {
		p, err := opts.Adaptive.policy(opts.Config.thresholds())
		if err != nil {
			return nil, err
		}
		pol = &p
	}
	inner, err := stream.NewParallelMultiEngineOpts(opts.Algorithm, g.g, int32Slices(subscriptions), opts.Config.thresholds(), workers,
		stream.ParallelOptions{QueueDepth: opts.QueueDepth, FailFast: opts.FailFast, Adaptive: pol})
	if err != nil {
		return nil, err
	}
	meta := metaFor(inner.Name(), g, subscriptions, []Config{opts.Config})
	meta.workers = workers
	if err := meta.applyTopology(opts.Topology); err != nil {
		return nil, err
	}
	return &ParallelService{inner: inner, meta: meta}, nil
}

// NewParallelService builds the sharded service with the given worker count
// and default backpressure (bounded queues, blocking Offer).
//
// Deprecated: use NewParallel. The call
// NewParallelService(alg, g, subs, cfg, workers) becomes
// NewParallel(g, subs, ParallelServiceOptions{Algorithm: alg, Config: cfg, Workers: workers}).
func NewParallelService(alg Algorithm, g *AuthorGraph, subscriptions [][]AuthorID, cfg Config, workers int) (*ParallelService, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("firehose: workers must be positive, got %d", workers)
	}
	return NewParallel(g, subscriptions, ParallelServiceOptions{
		Algorithm: alg, Config: cfg, Workers: workers,
	})
}

// NewParallelServiceOpts builds the sharded service with explicit
// backpressure options. opts.Workers = 0 selects runtime.NumCPU().
//
// Deprecated: use NewParallel. The call
// NewParallelServiceOpts(alg, g, subs, cfg, ParallelOptions{Workers: w, QueueDepth: d, FailFast: f})
// becomes NewParallel(g, subs, ParallelServiceOptions{Algorithm: alg, Config: cfg, Workers: w, QueueDepth: d, FailFast: f}).
func NewParallelServiceOpts(alg Algorithm, g *AuthorGraph, subscriptions [][]AuthorID, cfg Config, opts ParallelOptions) (*ParallelService, error) {
	return NewParallel(g, subscriptions, ParallelServiceOptions{
		Algorithm: alg, Config: cfg,
		Workers: opts.Workers, QueueDepth: opts.QueueDepth, FailFast: opts.FailFast,
	})
}

// Offer enqueues a post for its component's worker and returns immediately.
// Safe for concurrent producers. In fail-fast mode a full worker queue
// returns ErrQueueFull (the post is dropped, not enqueued); otherwise a full
// queue blocks until the worker drains. After Close it returns ErrClosed.
func (s *ParallelService) Offer(p Post) (Delivery, error) {
	t, err := s.inner.Offer(core.NewPost(p.ID, p.Author, p.Time.UnixMilli(), p.Text))
	return Delivery{t: t}, err
}

// BatchDelivery is the pending decision handle of OfferBatch: one handle for
// the whole batch, resolving each post's delivery in batch order.
type BatchDelivery struct{ t *stream.BatchTicket }

// Users blocks until every post in the batch is decided and returns the
// per-post delivered user ids, indexed in batch order. The returned slices
// are the caller's to keep.
func (d BatchDelivery) Users() [][]UserID {
	rows := d.t.Users()
	out := make([][]UserID, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	return out
}

// SeqBase returns the sequence number assigned to the batch's first post;
// post i in the batch holds sequence SeqBase()+i.
func (d BatchDelivery) SeqBase() uint64 { return d.t.SeqBase() }

// Len returns the number of posts in the batch.
func (d BatchDelivery) Len() int { return d.t.Len() }

// OfferBatch ingests a time-ordered slice of posts as one unit, amortizing
// the routing lock and per-worker channel sends across the batch. Posts must
// be non-decreasing in time and ordered after everything previously offered;
// the batch occupies sequence numbers SeqBase()..SeqBase()+len(posts)-1 in
// stream order. Per-user timelines are identical to offering the posts one by
// one. Unlike Offer, OfferBatch always applies blocking backpressure — even
// on a FailFast service — because shedding part of a batch would silently
// break the caller's ordering guarantee. After Close it returns ErrClosed.
func (s *ParallelService) OfferBatch(posts []Post) (BatchDelivery, error) {
	cps := make([]*core.Post, len(posts))
	for i, p := range posts {
		cps[i] = core.NewPost(p.ID, p.Author, p.Time.UnixMilli(), p.Text)
	}
	t, err := s.inner.OfferBatch(cps)
	return BatchDelivery{t: t}, err
}

// Close drains all workers and resolves every outstanding Delivery; call
// before reading final Stats. Idempotent and safe to call concurrently with
// Offer — racing Offers fail with ErrClosed rather than being half-accepted.
func (s *ParallelService) Close() { s.inner.Close() }

// Workers returns the shard count.
func (s *ParallelService) Workers() int { return s.inner.NumWorkers() }

// QueueDepth returns the per-worker queue bound.
func (s *ParallelService) QueueDepth() int { return s.inner.QueueDepth() }

// Stats merges the cost counters across workers. Safe at any time from any
// goroutine; the snapshot is taken worker by worker under each worker's
// decision lock, so it never races a decision (call after Close for exact
// final totals).
func (s *ParallelService) Stats() Stats {
	c := s.inner.Counters()
	return statsOf(&c)
}

// WorkerStats is the per-worker slice of the service's instrumentation —
// queue pressure and decision cost of one shard. Comparing QueueWait and
// Stats across workers makes component-hashing imbalance visible.
type WorkerStats struct {
	// Worker is the shard index, 0..Workers()-1.
	Worker int
	// QueueDepth is the number of posts waiting in this worker's queue at
	// snapshot time; QueueCapacity is its bound.
	QueueDepth, QueueCapacity int
	// QueueWait summarizes how long posts sat queued before their decision.
	QueueWait LatencySummary
	// Stats are this worker's cost counters; summing them across workers
	// gives Stats().
	Stats Stats
}

// WorkerStats snapshots every worker's queue state and counters, in worker
// order. Safe at any time from any goroutine; each worker is snapshotted
// under its own decision lock.
func (s *ParallelService) WorkerStats() []WorkerStats {
	snaps := s.inner.WorkerSnapshots()
	out := make([]WorkerStats, len(snaps))
	for i, ws := range snaps {
		out[i] = WorkerStats{
			Worker:        ws.Worker,
			QueueDepth:    ws.QueueLen,
			QueueCapacity: ws.QueueCap,
			QueueWait:     latencySummaryOf(ws.QueueWait),
			Stats:         statsOf(&ws.Counters),
		}
	}
	return out
}

// AdaptiveStates merges the per-shard controller states into one per-user
// view, sorted by user id, or nil when the service was built without
// ParallelServiceOptions.Adaptive. For a user spanning several shards the
// entry reports the tightest effective thresholds across shards and the
// summed delivered/suppressed counts. Safe at any time from any goroutine;
// shards are snapshotted one at a time under their decision locks, so call
// after Close for exact final values.
func (s *ParallelService) AdaptiveStates() []AdaptiveUserState {
	return publicAdaptiveStates(s.inner.AdaptiveStates())
}

// Suppressed returns the total number of deliveries the adaptive controllers
// withheld across all shards; 0 for a non-adaptive service.
func (s *ParallelService) Suppressed() uint64 { return s.inner.Suppressed() }

func wrapUserErr(u int, err error) error {
	return fmt.Errorf("user %d: %w", u, err)
}
