package firehose

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestParallelServiceEquivalenceAcrossWorkerCounts is the acceptance property
// of the parallel engine: for worker counts 1, 2 and NumCPU, every user's
// timeline (the ordered sequence of delivered post ids) is exactly the
// sequential MultiUserService's.
func TestParallelServiceEquivalenceAcrossWorkerCounts(t *testing.T) {
	graph, posts, subs := generateScenario(t, 180, 77)
	cfg := DefaultConfig()

	timelines := func(deliveries [][]UserID) map[UserID][]int {
		tl := make(map[UserID][]int)
		for i, users := range deliveries {
			for _, u := range users {
				tl[u] = append(tl[u], i)
			}
		}
		return tl
	}

	seq, err := NewMultiUserService(graph, subs, cfg, MultiUserOptions{Algorithm: UniBin})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]UserID, len(posts))
	for i, p := range posts {
		want[i] = seq.Offer(p)
	}
	wantTL := timelines(want)

	counts := []int{1, 2, runtime.NumCPU()}
	for _, workers := range counts {
		par, err := NewParallelService(UniBin, graph, subs, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		ds := make([]Delivery, len(posts))
		for i, p := range posts {
			d, err := par.Offer(p)
			if err != nil {
				t.Fatal(err)
			}
			ds[i] = d
		}
		par.Close()
		got := make([][]UserID, len(posts))
		for i, d := range ds {
			users := append([]UserID(nil), d.Users()...)
			sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
			got[i] = users
		}
		gotTL := timelines(got)
		if len(gotTL) != len(wantTL) {
			t.Fatalf("workers=%d: %d users with timelines, want %d", workers, len(gotTL), len(wantTL))
		}
		for u, wantPosts := range wantTL {
			gotPosts := gotTL[u]
			if len(gotPosts) != len(wantPosts) {
				t.Fatalf("workers=%d user %d: timeline length %d, want %d",
					workers, u, len(gotPosts), len(wantPosts))
			}
			for i := range wantPosts {
				if gotPosts[i] != wantPosts[i] {
					t.Fatalf("workers=%d user %d: timeline diverges at %d: post %d vs %d",
						workers, u, i, gotPosts[i], wantPosts[i])
				}
			}
		}
		sSt, pSt := seq.Stats(), par.Stats()
		if sSt.Accepted != pSt.Accepted || sSt.Rejected != pSt.Rejected {
			t.Fatalf("workers=%d: accept/reject %d/%d, want %d/%d",
				workers, pSt.Accepted, pSt.Rejected, sSt.Accepted, sSt.Rejected)
		}
	}
}

// TestParallelServiceConcurrentStress hammers Offer, Stats and Close from
// many goroutines; run under -race it verifies the public wrapper inherits
// the engine's lifecycle guarantees.
func TestParallelServiceConcurrentStress(t *testing.T) {
	g := mustGraph(t, 0.7)
	subs := [][]AuthorID{{0, 1, 2}, {1, 2}, {0}}
	svc, err := NewParallelServiceOpts(UniBin, g, subs, DefaultConfig(),
		ParallelOptions{Workers: 2, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Workers() != 2 || svc.QueueDepth() != 64 {
		t.Fatalf("options not plumbed: workers=%d depth=%d", svc.Workers(), svc.QueueDepth())
	}

	base := time.Unix(50000, 0)
	var (
		wg       sync.WaitGroup
		accepted atomic.Uint64
	)
	for pr := 0; pr < 6; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				d, err := svc.Offer(Post{
					Author: AuthorID((pr + i) % 3),
					Time:   base,
					Text:   "stress post payload number",
				})
				switch {
				case err == nil:
					accepted.Add(1)
					_ = d
				case errors.Is(err, ErrClosed):
					return
				default:
					t.Errorf("offer: %v", err)
					return
				}
			}
		}(pr)
	}
	statsDone := make(chan struct{})
	go func() {
		defer close(statsDone)
		for i := 0; i < 500; i++ {
			_ = svc.Stats()
		}
	}()
	wg.Wait()
	<-statsDone
	svc.Close()
	svc.Close() // idempotent

	// Counters count per-component decisions, and every offered post touches
	// at least one component here, so the processed total is bounded below by
	// the accepted offers and must be stable once Close has drained.
	st := svc.Stats()
	if st.Accepted+st.Rejected < accepted.Load() {
		t.Fatalf("stats processed %d decisions for %d accepted offers",
			st.Accepted+st.Rejected, accepted.Load())
	}
	if again := svc.Stats(); again != st {
		t.Fatalf("stats changed after Close: %+v vs %+v", again, st)
	}
	if _, err := svc.Offer(Post{Author: 0, Time: base, Text: "late"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("offer after close: got %v, want ErrClosed", err)
	}
}

func TestParallelServiceOptsDefaults(t *testing.T) {
	g := mustGraph(t, 0.7)
	svc, err := NewParallelServiceOpts(UniBin, g, [][]AuthorID{{0}}, DefaultConfig(), ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Workers() != runtime.NumCPU() {
		t.Fatalf("default workers = %d, want NumCPU (%d)", svc.Workers(), runtime.NumCPU())
	}
	if _, err := NewParallelServiceOpts(UniBin, g, [][]AuthorID{{0}}, DefaultConfig(),
		ParallelOptions{Workers: 1, QueueDepth: -5}); err == nil {
		t.Fatal("negative queue depth accepted")
	}
}
