package firehose

import (
	"testing"
	"time"
)

func TestParallelServiceMatchesSequential(t *testing.T) {
	graph, posts, subs := generateScenario(t, 220, 91)
	cfg := DefaultConfig()

	seq, err := NewMultiUserService(graph, subs, cfg, MultiUserOptions{Algorithm: UniBin})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallelService(UniBin, graph, subs, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Workers() != 4 {
		t.Fatalf("Workers = %d", par.Workers())
	}

	type decided struct {
		want []UserID
		d    Delivery
	}
	var all []decided
	for _, p := range posts {
		want := seq.Offer(p)
		d, err := par.Offer(p)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, decided{want: want, d: d})
	}
	par.Close()

	for i, dec := range all {
		got := dec.d.Users()
		if len(got) != len(dec.want) {
			t.Fatalf("post %d: %d users vs %d", i, len(got), len(dec.want))
		}
		inGot := map[UserID]bool{}
		for _, u := range got {
			inGot[u] = true
		}
		for _, u := range dec.want {
			if !inGot[u] {
				t.Fatalf("post %d: user %d missing from parallel delivery", i, u)
			}
		}
	}

	sSt, pSt := seq.Stats(), par.Stats()
	if sSt.Accepted != pSt.Accepted || sSt.Rejected != pSt.Rejected {
		t.Fatalf("stats differ: %+v vs %+v", sSt, pSt)
	}
}

func TestParallelServiceValidation(t *testing.T) {
	g := mustGraph(t, 0.7)
	cfg := DefaultConfig()
	if _, err := NewParallelService(UniBin, nil, nil, cfg, 2); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewParallelService(UniBin, g, [][]AuthorID{{9}}, cfg, 2); err == nil {
		t.Fatal("bad subscription accepted")
	}
	if _, err := NewParallelService(UniBin, g, [][]AuthorID{{0}}, cfg, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestParallelServiceSmallFlow(t *testing.T) {
	g := mustGraph(t, 0.7)
	svc, err := NewParallelService(UniBin, g, [][]AuthorID{{0, 1}, {2}}, DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(9000, 0)
	d1, _ := svc.Offer(Post{ID: 1, Author: 0, Time: base, Text: "storm hits coastal towns overnight http://t.co/a"})
	d2, _ := svc.Offer(Post{ID: 2, Author: 1, Time: base.Add(time.Minute), Text: "storm hits coastal towns overnight http://t.co/b"})
	svc.Close()
	if got := d1.Users(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("d1 users %v", got)
	}
	if got := d2.Users(); len(got) != 0 {
		t.Fatalf("duplicate delivered to %v", got)
	}
	if _, err := svc.Offer(Post{ID: 3, Author: 0, Time: base.Add(2 * time.Minute), Text: "x y"}); err == nil {
		t.Fatal("offer after close accepted")
	}
}
