package firehose

import (
	"strings"
	"testing"
	"time"
)

// Regression tests for threshold and ID edge-case bugs: before the fixes, a
// sub-millisecond LambdaT was silently truncated to 0 (disabling the time
// dimension) and auto-assigned post ids could collide with caller-supplied
// ones.

func TestSubMillisecondLambdaTRejected(t *testing.T) {
	g := mustGraph(t, 0.7)
	cases := []time.Duration{
		500 * time.Microsecond,              // silently became 0 before
		time.Millisecond + time.Microsecond, // silently became 1ms before
		-700 * time.Microsecond,
	}
	for _, lt := range cases {
		cfg := Config{LambdaC: 18, LambdaT: lt, LambdaA: 0.7}
		if _, err := NewDiversifier(UniBin, g, nil, cfg); err == nil {
			t.Fatalf("LambdaT=%v accepted by NewDiversifier", lt)
		} else if !strings.Contains(err.Error(), "millisecond") {
			t.Fatalf("LambdaT=%v: unhelpful error %q", lt, err)
		}
		if _, err := NewMultiUserService(g, [][]AuthorID{{0}}, cfg, MultiUserOptions{}); err == nil {
			t.Fatalf("LambdaT=%v accepted by NewMultiUserService", lt)
		}
		if _, err := NewParallelService(UniBin, g, [][]AuthorID{{0}}, cfg, 2); err == nil {
			t.Fatalf("LambdaT=%v accepted by NewParallelService", lt)
		}
		if _, err := NewCustomMultiUserService(UniBin, g, [][]AuthorID{{0}}, []Config{cfg}); err == nil {
			t.Fatalf("LambdaT=%v accepted by NewCustomMultiUserService", lt)
		}
	}
	// Whole-millisecond (and zero) thresholds still pass.
	for _, lt := range []time.Duration{0, time.Millisecond, 30 * time.Minute} {
		cfg := Config{LambdaC: 18, LambdaT: lt, LambdaA: 0.7}
		if _, err := NewDiversifier(UniBin, g, nil, cfg); err != nil {
			t.Fatalf("LambdaT=%v rejected: %v", lt, err)
		}
	}
}

func TestAutoIDsNeverCollideWithCallerIDs(t *testing.T) {
	g := mustGraph(t, 0.7)
	d, err := NewDiversifier(UniBin, g, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0)
	// A caller-supplied id must be echoed unchanged.
	if got := d.toCore(Post{ID: 7, Author: 0, Time: base}).ID; got != 7 {
		t.Fatalf("caller id rewritten to %d", got)
	}
	// The next auto-assigned id continues past the caller's maximum instead
	// of restarting at 1 (which collided with caller ids before the fix).
	if got := d.toCore(Post{Author: 1, Time: base}).ID; got != 8 {
		t.Fatalf("auto id after caller id 7 = %d, want 8", got)
	}
	// A smaller caller id does not move the high-water mark backwards.
	if got := d.toCore(Post{ID: 3, Author: 2, Time: base}).ID; got != 3 {
		t.Fatalf("caller id rewritten to %d", got)
	}
	if got := d.toCore(Post{Author: 0, Time: base}).ID; got != 9 {
		t.Fatalf("auto id after high-water 8 = %d, want 9", got)
	}
	// Pure auto-assignment starts at 1 as before.
	d2, _ := NewDiversifier(UniBin, g, nil, DefaultConfig())
	if got := d2.toCore(Post{Author: 0, Time: base}).ID; got != 1 {
		t.Fatalf("first auto id = %d, want 1", got)
	}
}
